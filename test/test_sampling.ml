(* Adaptive sampling: unbiasedness of inverse-probability-weighted
   estimates, rate-1.0 byte-identity with the pre-sampling pipeline,
   determinism across domain counts, capture/replay round-trips of the
   rate schedule, and the overhead-budget governor — including its
   telemetry-blind degradation contract. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

let ( let* ) x f = QCheck.Gen.( >>= ) x f

(* ------------------------------------------------------------------ *)
(* Warp.thin: statistics and mechanics                                 *)
(* ------------------------------------------------------------------ *)

let mk_batch ~len ~maxw seed =
  let rng = Pasta_util.Det_rng.of_key (Int64.of_int seed) [| 11; 7 |] in
  let addrs = Array.init len (fun i -> 4096 + (64 * i)) in
  let sizes = Array.make len 4 in
  let warps = Array.init len (fun i -> i / 32) in
  let weights = Array.init len (fun _ -> 1 + Pasta_util.Det_rng.int rng maxw) in
  let writes = Bytes.make len '\000' in
  Gpusim.Warp.batch_of_arrays ~region:0 ~chunk:0 ~pc:64 ~addrs ~sizes ~warps
    ~weights ~writes

let batch_weight = Gpusim.Warp.batch_weight

(* The headline estimator property: thinning keeps each record with
   probability [rate] and reweights survivors by 1/rate (stochastically
   rounded), so the expected thinned total equals the exact total.  We
   check the empirical mean over independent thinning streams against the
   ground truth within a tolerance several sigma wide for these sizes. *)
let prop_thin_unbiased =
  let gen =
    let* len = QCheck.Gen.int_range 512 1024 in
    let* maxw = QCheck.Gen.int_range 1 9 in
    let* rate = QCheck.Gen.oneofl [ 0.5; 0.25 ] in
    let* seed = QCheck.Gen.int_range 1 1_000_000 in
    QCheck.Gen.return (len, maxw, rate, seed)
  in
  QCheck.Test.make ~name:"thin: inverse-probability weights are unbiased"
    ~count:10
    (QCheck.make gen ~print:(fun (len, maxw, rate, seed) ->
         Printf.sprintf "len=%d maxw=%d rate=%g seed=%d" len maxw rate seed))
    (fun (len, maxw, rate, seed) ->
      let b = mk_batch ~len ~maxw seed in
      let exact = float_of_int (batch_weight b) in
      let trials = 64 in
      let sum = ref 0.0 in
      for t = 1 to trials do
        let rng =
          Pasta_util.Det_rng.of_key (Int64.of_int seed) [| 3; t; 0x5A3D |]
        in
        let thinned = Gpusim.Warp.thin ~rng ~rate b in
        sum := !sum +. float_of_int (batch_weight thinned)
      done;
      let mean = !sum /. float_of_int trials in
      Float.abs (mean -. exact) /. exact < 0.05)

let prop_thin_structure =
  let gen =
    let* len = QCheck.Gen.int_range 1 512 in
    let* maxw = QCheck.Gen.int_range 1 9 in
    let* rate = QCheck.Gen.oneofl [ 0.9; 0.5; 0.1 ] in
    let* seed = QCheck.Gen.int_range 1 1_000_000 in
    QCheck.Gen.return (len, maxw, rate, seed)
  in
  QCheck.Test.make
    ~name:"thin: survivors are a subsequence with positive weights" ~count:50
    (QCheck.make gen ~print:(fun (len, maxw, rate, seed) ->
         Printf.sprintf "len=%d maxw=%d rate=%g seed=%d" len maxw rate seed))
    (fun (len, maxw, rate, seed) ->
      let b = mk_batch ~len ~maxw seed in
      let rng = Pasta_util.Det_rng.of_key (Int64.of_int seed) [| 9; 0x5A3D |] in
      let t = Gpusim.Warp.thin ~rng ~rate b in
      let module W = Gpusim.Warp in
      t.W.b_len <= b.W.b_len
      && t.W.b_region = b.W.b_region
      && t.W.b_pc = b.W.b_pc
      &&
      (* every surviving address appears in the original, in order *)
      let ok = ref true in
      let j = ref 0 in
      for i = 0 to t.W.b_len - 1 do
        while !j < b.W.b_len && b.W.addrs.{!j} <> t.W.addrs.{i} do
          incr j
        done;
        if !j >= b.W.b_len then ok := false else incr j;
        if t.W.weights.{i} < 1 then ok := false
      done;
      !ok)

let test_thin_rate_one_is_physical_identity () =
  let b = mk_batch ~len:256 ~maxw:4 42 in
  let rng = Pasta_util.Det_rng.of_key 1L [| 0x5A3D |] in
  check_bool "rate 1.0 returns the batch unchanged" true
    (Gpusim.Warp.thin ~rng ~rate:1.0 b == b);
  check_bool "rate above 1.0 clamps to identity" true
    (Gpusim.Warp.thin ~rng ~rate:2.0 b == b)

let test_thin_determinism () =
  let b = mk_batch ~len:512 ~maxw:6 7 in
  let thin () =
    let rng = Pasta_util.Det_rng.of_key 99L [| 1; 2; 0x5A3D |] in
    Gpusim.Warp.thin ~rng ~rate:0.3 b
  in
  let a = thin () and c = thin () in
  let module W = Gpusim.Warp in
  check_int "same stream, same survivor count" a.W.b_len c.W.b_len;
  let same_col n get get' =
    let ok = ref true in
    for i = 0 to n - 1 do
      if get i <> get' i then ok := false
    done;
    !ok
  in
  check_bool "same stream, same records" true
    (same_col a.W.b_len (fun i -> a.W.addrs.{i}) (fun i -> c.W.addrs.{i})
    && same_col a.W.b_len (fun i -> a.W.weights.{i}) (fun i -> c.W.weights.{i}))

(* ------------------------------------------------------------------ *)
(* Devagg estimate stamping                                            *)
(* ------------------------------------------------------------------ *)

let test_devagg_est_rate () =
  let om = Pasta.Objmap.create () in
  let view = Pasta.Objmap.view om in
  let b = mk_batch ~len:128 ~maxw:3 5 in
  let shard = Pasta.Devagg.aggregate view b in
  let exact = Pasta.Devagg.merge [| shard |] in
  check_bool "default merge is exact" true (exact.Pasta.Devagg.est_rate = 1.0);
  check_bool "exact summaries have zero stderr" true
    (Pasta.Devagg.rel_stderr exact = 0.0);
  let est = Pasta.Devagg.merge ~est_rate:0.25 [| shard |] in
  check_bool "est_rate is stamped" true (est.Pasta.Devagg.est_rate = 0.25);
  check_bool "estimates carry positive stderr" true
    (Pasta.Devagg.rel_stderr est > 0.0);
  let s_exact = Format.asprintf "%a" Pasta.Devagg.pp exact in
  let s_est = Format.asprintf "%a" Pasta.Devagg.pp est in
  check_bool "exact pp has no estimate marker" false
    (Astring_contains.contains s_exact "estimate");
  check_bool "estimated pp is annotated" true
    (Astring_contains.contains s_est "estimate")

(* ------------------------------------------------------------------ *)
(* Config parsing                                                      *)
(* ------------------------------------------------------------------ *)

let test_parse_budget () =
  let p = Pasta.Config.parse_budget in
  check_bool "percent form" true (p "5%" = Some 0.05);
  check_bool "fraction form" true (p "0.05" = Some 0.05);
  check_bool "whitespace tolerated" true (p " 10% " = Some 0.1);
  check_bool "one hundred percent" true (p "100%" = Some 1.0);
  check_bool "zero rejected" true (p "0" = None);
  check_bool "over one rejected" true (p "1.5" = None);
  check_bool "over 100% rejected" true (p "150%" = None);
  check_bool "junk rejected" true (p "fast" = None);
  check_bool "empty rejected" true (p "" = None)

let test_sampler_validation () =
  (match Pasta.Sampler.create (Pasta.Sampler.Fixed 0.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rate 0 must be rejected");
  (match Pasta.Sampler.create (Pasta.Sampler.Auto { budget = 2.0 }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "budget above 1 must be rejected");
  (match Pasta.Sampler.of_config () with
  | None -> ()
  | Some _ -> Alcotest.fail "no knobs, no governor");
  (match Pasta.Sampler.of_config ~rate:0.5 () with
  | Some g -> (
      match Pasta.Sampler.mode g with
      | Pasta.Sampler.Fixed r -> check_bool "fixed rate" true (r = 0.5)
      | _ -> Alcotest.fail "bare rate must select Fixed")
  | None -> Alcotest.fail "rate must install a governor");
  match Pasta.Sampler.of_config ~rate:0.5 ~budget:0.1 () with
  | Some g -> (
      match Pasta.Sampler.mode g with
      | Pasta.Sampler.Auto { budget } ->
          check_bool "budget governs" true (budget = 0.1)
      | _ -> Alcotest.fail "budget must select Auto")
  | None -> Alcotest.fail "budget must install a governor"

(* ------------------------------------------------------------------ *)
(* Pipeline byte-identity and determinism                              *)
(* ------------------------------------------------------------------ *)

let bert_inference ctx () =
  let m = Dlfw.Bert.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
  Dlfw.Model.inference_iter ctx m

(* One live BERT run under the fine-grained parallel hotness tool.
   [rate]/[budget] engage the sampler; [faulty] installs a pinned-seed
   injector; [capture] records a trace alongside. *)
let live_run ?rate ?budget ?capture ~faulty ~domains () =
  Pasta.Config.set "ACCEL_PROF_DOMAINS" (string_of_int domains);
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let faults =
    if faulty then Some (Gpusim.Faults.create ~seed:24285L ()) else None
  in
  let hot = Pasta_tools.Hotness.create () in
  let (), result =
    Pasta.Session.run ~sample_cap:256 ?sample_rate:rate ?overhead_budget:budget
      ?faults ?capture
      ~tool:(Pasta_tools.Hotness.tool_fine hot)
      device (bert_inference ctx)
  in
  Dlfw.Ctx.destroy ctx;
  Pasta.Config.unset "ACCEL_PROF_DOMAINS";
  (Format.asprintf "%t" result.Pasta.Session.report, result)

let test_rate_one_byte_identical ~faulty ~domains () =
  let baseline, _ = live_run ~faulty ~domains () in
  let sampled, r = live_run ~rate:1.0 ~faulty ~domains () in
  check_bool "rate 1.0 report byte-identical to pre-sampling pipeline" true
    (String.equal baseline sampled);
  check_bool "no estimate annotation at rate 1.0" false
    (Astring_contains.contains sampled "estimated from sampled");
  match r.Pasta.Session.health.Pasta.Session.sampling with
  | Some sn ->
      check_int "rate 1.0 fixed governor never adjusts" 0
        sn.Pasta.Sampler.sn_adjustments
  | None -> Alcotest.fail "governor state missing from health"

let test_sampled_domain_invariance () =
  let a, _ = live_run ~rate:0.25 ~faulty:false ~domains:1 () in
  let b, _ = live_run ~rate:0.25 ~faulty:false ~domains:4 () in
  check_bool "rate 0.25 report identical at 1 and 4 domains" true
    (String.equal a b);
  check_bool "estimates are annotated" true
    (Astring_contains.contains a "estimated from sampled")

let test_sampled_faulty_determinism () =
  let a, _ = live_run ~rate:0.25 ~faulty:true ~domains:1 () in
  let b, _ = live_run ~rate:0.25 ~faulty:true ~domains:4 () in
  check_bool "sampling composes with fault injection deterministically" true
    (String.equal a b)

(* ------------------------------------------------------------------ *)
(* Rate schedule through capture/replay                                *)
(* ------------------------------------------------------------------ *)

let temp_trace () = Filename.temp_file "pasta_sampling" ".ptrace"

let replay_report path =
  let hot = Pasta_tools.Hotness.create () in
  let o =
    Pasta.Replay.run ~mode:Pasta.Ptrace.Strict
      ~tool:(Pasta_tools.Hotness.tool_fine hot)
      path
  in
  (o, Format.asprintf "%t" o.Pasta.Replay.report)

let test_fixed_rate_replay () =
  let path = temp_trace () in
  let live, _ = live_run ~rate:0.25 ~faulty:false ~domains:2 ~capture:path () in
  let _, replayed = replay_report path in
  check_bool "sampled live vs replay byte-identical" true
    (String.equal live replayed);
  let s = Pasta.Replay.stat path in
  check_bool "rate schedule recorded in the trace" true
    (List.mem_assoc "sample_rate" s.Pasta.Replay.s_kinds);
  Sys.remove path

let test_rate_one_trace_has_no_schedule () =
  let path = temp_trace () in
  let _ = live_run ~rate:1.0 ~faulty:false ~domains:1 ~capture:path () in
  let s = Pasta.Replay.stat path in
  check_bool "rate 1.0 records no sample_rate ops" false
    (List.mem_assoc "sample_rate" s.Pasta.Replay.s_kinds);
  Sys.remove path

let test_auto_governor_replay () =
  let path = temp_trace () in
  let live, r = live_run ~budget:0.3 ~faulty:false ~domains:2 ~capture:path () in
  (match r.Pasta.Session.health.Pasta.Session.sampling with
  | Some sn ->
      check_bool "governor observed windows" true (sn.Pasta.Sampler.sn_windows > 0)
  | None -> Alcotest.fail "governor state missing from health");
  (* The auto schedule is wall-clock-driven and unrepeatable, but the
     recorded schedule replays to the exact live report. *)
  let _, replayed = replay_report path in
  check_bool "auto-governed live vs replay byte-identical" true
    (String.equal live replayed);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Governor behaviour                                                  *)
(* ------------------------------------------------------------------ *)

let test_auto_health_reported () =
  let _, r = live_run ~budget:0.3 ~faulty:false ~domains:1 () in
  match r.Pasta.Session.health.Pasta.Session.sampling with
  | Some sn ->
      check_int "one feedback window per kernel" r.Pasta.Session.kernels
        sn.Pasta.Sampler.sn_windows;
      check_bool "rate stays in (0, 1]" true
        (sn.Pasta.Sampler.sn_rate > 0.0 && sn.Pasta.Sampler.sn_rate <= 1.0);
      check_bool "no blind windows with telemetry on" true
        (sn.Pasta.Sampler.sn_blind_windows = 0);
      let h = Format.asprintf "%a" Pasta.Session.pp_health r.Pasta.Session.health in
      check_bool "health names the governor" true
        (Astring_contains.contains h "sampling: auto")
  | None -> Alcotest.fail "governor state missing from health"

(* Satellite regression: ACCEL_PROF_TELEMETRY=off strips the governor of
   its feedback signal.  It must degrade to the fixed fallback rate and
   surface a warning counter — not silently pin rate 1.0. *)
let test_blind_governor_degrades () =
  Pasta.Config.set "ACCEL_PROF_TELEMETRY" "off";
  Fun.protect
    ~finally:(fun () ->
      Pasta.Config.unset "ACCEL_PROF_TELEMETRY";
      Pasta.Telemetry.refresh_level ())
    (fun () ->
      let _, r = live_run ~budget:0.05 ~faulty:false ~domains:1 () in
      match r.Pasta.Session.health.Pasta.Session.sampling with
      | Some sn ->
          check_bool "blind windows counted" true
            (sn.Pasta.Sampler.sn_blind_windows > 0);
          check_bool "fallback rate in force, not 1.0" true
            (sn.Pasta.Sampler.sn_rate = Pasta.Sampler.default_blind_rate);
          let h =
            Format.asprintf "%a" Pasta.Session.pp_health
              r.Pasta.Session.health
          in
          check_bool "health warns about the blind governor" true
            (Astring_contains.contains h "telemetry off")
      | None -> Alcotest.fail "governor state missing from health")

let test_blind_governor_uses_configured_fallback () =
  Pasta.Config.set "ACCEL_PROF_TELEMETRY" "off";
  Fun.protect
    ~finally:(fun () ->
      Pasta.Config.unset "ACCEL_PROF_TELEMETRY";
      Pasta.Telemetry.refresh_level ())
    (fun () ->
      let _, r =
        live_run ~rate:0.4 ~budget:0.05 ~faulty:false ~domains:1 ()
      in
      match r.Pasta.Session.health.Pasta.Session.sampling with
      | Some sn ->
          check_bool "explicit rate becomes the blind fallback" true
            (sn.Pasta.Sampler.sn_rate = 0.4)
      | None -> Alcotest.fail "governor state missing from health")

let suite =
  [
    qtest prop_thin_unbiased;
    qtest prop_thin_structure;
    Alcotest.test_case "thin: rate 1.0 is a physical no-op" `Quick
      test_thin_rate_one_is_physical_identity;
    Alcotest.test_case "thin: same stream, same survivors" `Quick
      test_thin_determinism;
    Alcotest.test_case "devagg stamps est_rate and stderr" `Quick
      test_devagg_est_rate;
    Alcotest.test_case "overhead budget parsing" `Quick test_parse_budget;
    Alcotest.test_case "sampler validation and resolution" `Quick
      test_sampler_validation;
    Alcotest.test_case "rate 1.0 byte-identical (1 domain)" `Quick
      (test_rate_one_byte_identical ~faulty:false ~domains:1);
    Alcotest.test_case "rate 1.0 byte-identical (4 domains)" `Quick
      (test_rate_one_byte_identical ~faulty:false ~domains:4);
    Alcotest.test_case "rate 1.0 byte-identical under faults" `Quick
      (test_rate_one_byte_identical ~faulty:true ~domains:2);
    Alcotest.test_case "rate 0.25 identical across domain counts" `Quick
      test_sampled_domain_invariance;
    Alcotest.test_case "sampling composes with faults" `Quick
      test_sampled_faulty_determinism;
    Alcotest.test_case "fixed-rate capture replays byte-identically" `Quick
      test_fixed_rate_replay;
    Alcotest.test_case "rate 1.0 trace carries no rate schedule" `Quick
      test_rate_one_trace_has_no_schedule;
    Alcotest.test_case "auto-governed capture replays byte-identically" `Quick
      test_auto_governor_replay;
    Alcotest.test_case "auto governor reports health" `Quick
      test_auto_health_reported;
    Alcotest.test_case "telemetry-off governor degrades loudly" `Quick
      test_blind_governor_degrades;
    Alcotest.test_case "blind fallback honours configured rate" `Quick
      test_blind_governor_uses_configured_fallback;
  ]
