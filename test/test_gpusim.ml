(* Unit and property tests for the GPU simulator substrate. *)

open Gpusim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let qtest = QCheck_alcotest.to_alcotest

(* ---- Arch / Clock / Dim3 ---- *)

let test_arch_lanes () =
  List.iter
    (fun a ->
      check_bool "concurrent lanes positive" true (Arch.concurrent_lanes a > 0);
      check_bool "analysis lanes positive" true (Arch.analysis_lanes a > 0);
      check_bool "analysis lanes << concurrent" true
        (Arch.analysis_lanes a < Arch.concurrent_lanes a))
    Arch.all

let test_arch_vendors () =
  check_string "a100 vendor" "NVIDIA" (Arch.vendor_to_string Arch.a100.Arch.vendor);
  check_string "mi300x vendor" "AMD" (Arch.vendor_to_string Arch.mi300x.Arch.vendor)

let test_clock () =
  let c = Clock.create () in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Clock.now_us c);
  Clock.advance_us c 5.0;
  Clock.advance_us c 2.5;
  Alcotest.(check (float 1e-9)) "accumulates" 7.5 (Clock.now_us c);
  Alcotest.check_raises "negative" (Invalid_argument "Clock.advance_us: negative duration")
    (fun () -> Clock.advance_us c (-1.0));
  Clock.reset c;
  Alcotest.(check (float 0.0)) "reset" 0.0 (Clock.now_us c)

let test_dim3 () =
  check_int "total" 24 (Dim3.total (Dim3.make ~y:3 ~z:4 2));
  check_string "pp" "(2,3,4)" (Dim3.to_string (Dim3.make ~y:3 ~z:4 2));
  Alcotest.check_raises "non-positive" (Invalid_argument "Dim3.make: non-positive component")
    (fun () -> ignore (Dim3.make 0))

(* ---- Hostctx ---- *)

let frame file line symbol = { Hostctx.file; line; symbol }

let test_hostctx_balance () =
  Hostctx.clear ();
  Hostctx.push Hostctx.Python (frame "a.py" 1 "f");
  Hostctx.push Hostctx.Python (frame "b.py" 2 "g");
  check_int "depth" 2 (Hostctx.depth Hostctx.Python);
  (match Hostctx.snapshot Hostctx.Python with
  | { Hostctx.file = "b.py"; _ } :: _ -> ()
  | _ -> Alcotest.fail "innermost first");
  Hostctx.pop Hostctx.Python;
  Hostctx.pop Hostctx.Python;
  Alcotest.check_raises "pop empty"
    (Invalid_argument "Hostctx.pop: empty stack (unbalanced scope)") (fun () ->
      Hostctx.pop Hostctx.Python)

let test_hostctx_exception_safe () =
  Hostctx.clear ();
  (try
     Hostctx.with_frame Hostctx.Native (frame "x.cpp" 3 "h") (fun () -> failwith "boom")
   with Failure _ -> ());
  check_int "restored after exception" 0 (Hostctx.depth Hostctx.Native)

(* ---- Device_mem ---- *)

let test_devmem_roundtrip () =
  let m = Device_mem.create ~capacity:(1 lsl 20) () in
  let a = Device_mem.alloc m ~tag:"t" 1000 in
  check_int "aligned size" 1024 a.Device_mem.bytes;
  check_bool "aligned base" true (a.Device_mem.base mod 512 = 0);
  check_int "used" 1024 (Device_mem.used_bytes m);
  check_int "live" 1 (Device_mem.live_count m);
  let freed = Device_mem.free m a.Device_mem.base in
  check_int "freed is same" a.Device_mem.base freed.Device_mem.base;
  check_int "used back to zero" 0 (Device_mem.used_bytes m);
  Device_mem.check_invariants m

let test_devmem_double_free () =
  let m = Device_mem.create ~capacity:4096 () in
  let a = Device_mem.alloc m 512 in
  ignore (Device_mem.free m a.Device_mem.base);
  Alcotest.check_raises "double free"
    (Invalid_argument "Device_mem.free: not a live allocation base") (fun () ->
      ignore (Device_mem.free m a.Device_mem.base))

let test_devmem_find_containing () =
  let m = Device_mem.create ~base:0 ~capacity:8192 () in
  let a = Device_mem.alloc m 512 in
  let b = Device_mem.alloc m 512 in
  (match Device_mem.find_containing m (a.Device_mem.base + 100) with
  | Some x -> check_int "inside a" a.Device_mem.base x.Device_mem.base
  | None -> Alcotest.fail "expected hit");
  (match Device_mem.find_containing m b.Device_mem.base with
  | Some x -> check_int "base boundary of b" b.Device_mem.base x.Device_mem.base
  | None -> Alcotest.fail "expected hit");
  check_bool "past end misses" true
    (Device_mem.find_containing m (b.Device_mem.base + 512) = None)

let test_devmem_oom () =
  let m = Device_mem.create ~capacity:1024 () in
  ignore (Device_mem.alloc m 1024);
  check_bool "oom raises" true
    (try
       ignore (Device_mem.alloc m 1);
       false
     with Device_mem.Out_of_memory _ -> true)

let test_devmem_coalesce_reuse () =
  let m = Device_mem.create ~capacity:4096 () in
  let a = Device_mem.alloc m 1024 in
  let b = Device_mem.alloc m 1024 in
  ignore (Device_mem.free m a.Device_mem.base);
  ignore (Device_mem.free m b.Device_mem.base);
  (* After coalescing, one allocation of the combined size must fit. *)
  let c = Device_mem.alloc m 4096 in
  check_int "whole space again" 4096 c.Device_mem.bytes;
  Device_mem.check_invariants m

let prop_devmem_invariants =
  QCheck.Test.make ~name:"device_mem invariants under random alloc/free" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 1 2048))
    (fun sizes ->
      let m = Device_mem.create ~capacity:(1 lsl 16) () in
      let live = ref [] in
      let rng = Pasta_util.Det_rng.create 5L in
      List.iter
        (fun sz ->
          if Pasta_util.Det_rng.bool rng || !live = [] then (
            match Device_mem.alloc m sz with
            | a -> live := a :: !live
            | exception Device_mem.Out_of_memory _ -> ())
          else
            match !live with
            | a :: rest ->
                ignore (Device_mem.free m a.Device_mem.base);
                live := rest
            | [] -> ())
        sizes;
      Device_mem.check_invariants m;
      true)

(* ---- Kernel / Sass / Warp ---- *)

let mk_kernel ?(regions = []) ?(flops = 0.0) ?(shared = 0) ?(barriers = 0) name =
  Kernel.make ~name ~grid:(Dim3.make 16) ~block:(Dim3.make 256) ~regions ~flops
    ~shared_bytes:shared ~barriers ()

let two_region_kernel =
  mk_kernel
    ~regions:
      [
        Kernel.region ~base:0x1000 ~bytes:4096 ~accesses:1000 ();
        Kernel.region ~write:true ~base:0x4000 ~bytes:8192 ~accesses:500 ();
      ]
    ~flops:1.0e6 ~shared:1024 ~barriers:2 "k"

let test_kernel_accessors () =
  check_int "total accesses" 1500 (Kernel.total_accesses two_region_kernel);
  check_int "bytes touched" 12288 (Kernel.bytes_touched two_region_kernel);
  check_int "bytes moved lower bound" 12288 (Kernel.bytes_moved two_region_kernel);
  check_int "threads" (16 * 256) (Kernel.threads two_region_kernel)

let test_kernel_invalid_region () =
  Alcotest.check_raises "negative accesses"
    (Invalid_argument "Kernel.region: negative access count") (fun () ->
      ignore (Kernel.region ~base:0 ~bytes:10 ~accesses:(-1) ()))

let test_sass_roundtrip () =
  let instrs = Sass.listing two_region_kernel in
  check_int "static size matches" (List.length instrs) (Sass.static_size two_region_kernel);
  let parsed = Sass.parse (Sass.dump two_region_kernel) in
  check_int "roundtrip length" (List.length instrs) (List.length parsed);
  List.iter2
    (fun (a : Instr.t) (b : Instr.t) ->
      check_int "pc" a.Instr.pc b.Instr.pc;
      check_bool "opcode" true (a.Instr.opcode = b.Instr.opcode))
    instrs parsed

let test_sass_memory_pcs () =
  let instrs = Sass.listing two_region_kernel in
  let pcs = Sass.memory_pcs instrs in
  (* one global access per region plus the LDGSTS of the shared-memory
     block *)
  check_int "memory instruction count" 3 (List.length pcs)

let test_sass_parse_error () =
  check_bool "bad line raises" true
    (try
       ignore (Sass.parse "/*0000*/ FROBNICATE R0 ;");
       false
     with Sass.Parse_error _ -> true)

let prop_sass_roundtrip =
  QCheck.Test.make ~name:"sass dump/parse roundtrip for random kernels" ~count:100
    QCheck.(pair (int_range 0 4) (int_range 0 1_000_000))
    (fun (nregions, flops) ->
      let regions =
        List.init nregions (fun i ->
            Kernel.region ~write:(i mod 2 = 0) ~base:(0x1000 * (i + 1)) ~bytes:256
              ~accesses:64 ())
      in
      let k = mk_kernel ~regions ~flops:(float_of_int flops) "rk" in
      let parsed = Sass.parse (Sass.dump k) in
      List.length parsed = Sass.static_size k)

let test_warp_weights_sum () =
  let rng = Pasta_util.Det_rng.create 3L in
  let total = ref 0 in
  let returned =
    Warp.generate ~rng ~warp_size:32 ~max_records_per_region:16 two_region_kernel
      ~f:(fun a -> total := !total + a.Warp.weight)
  in
  check_int "weights sum to true count" 1500 !total;
  check_int "returned true count" 1500 returned

let test_warp_addresses_in_bounds () =
  let rng = Pasta_util.Det_rng.create 4L in
  ignore
    (Warp.generate ~rng ~warp_size:32 ~max_records_per_region:64 two_region_kernel
       ~f:(fun a ->
         let in_r1 = a.Warp.addr >= 0x1000 && a.Warp.addr < 0x1000 + 4096 in
         let in_r2 = a.Warp.addr >= 0x4000 && a.Warp.addr < 0x4000 + 8192 in
         check_bool "address within some region" true (in_r1 || in_r2)))

let test_warp_region_coverage () =
  (* Every non-empty region yields at least one record even with cap 1. *)
  let rng = Pasta_util.Det_rng.create 5L in
  let seen = Hashtbl.create 4 in
  ignore
    (Warp.generate ~rng ~warp_size:32 ~max_records_per_region:1 two_region_kernel
       ~f:(fun a -> Hashtbl.replace seen a.Warp.write ()));
  check_int "both regions sampled" 2 (Hashtbl.length seen)

let prop_warp_weights =
  QCheck.Test.make ~name:"warp sampled weights always sum to true accesses" ~count:200
    QCheck.(pair (int_range 1 100000) (int_range 1 256))
    (fun (accesses, cap) ->
      let k =
        mk_kernel ~regions:[ Kernel.region ~base:0 ~bytes:65536 ~accesses () ] "w"
      in
      let rng = Pasta_util.Det_rng.create 9L in
      let total = ref 0 in
      ignore
        (Warp.generate ~rng ~warp_size:32 ~max_records_per_region:cap k ~f:(fun a ->
             total := !total + a.Warp.weight));
      !total = accesses)

(* ---- Costmodel ---- *)

let test_cost_roofline () =
  let small = mk_kernel ~flops:1.0 "small" in
  let big = mk_kernel ~flops:1.0e12 "big" in
  check_bool "flops monotonic" true
    (Costmodel.kernel_time_us Arch.a100 big > Costmodel.kernel_time_us Arch.a100 small);
  check_bool "includes launch overhead" true
    (Costmodel.kernel_time_us Arch.a100 small >= Arch.a100.Arch.launch_overhead_us)

let test_cost_memcpy_kinds () =
  let h2d = Costmodel.memcpy_time_us Arch.a100 ~bytes:(1 lsl 26) ~kind:`H2d in
  let d2d = Costmodel.memcpy_time_us Arch.a100 ~bytes:(1 lsl 26) ~kind:`D2d in
  check_bool "device-local copy faster than PCIe" true (d2d < h2d)

let test_cost_transfer_linear () =
  let t1 = Costmodel.transfer_time_us Arch.a100 ~records:1000 in
  let t2 = Costmodel.transfer_time_us Arch.a100 ~records:2000 in
  Alcotest.(check (float 1e-6)) "linear in records" (2.0 *. t1) t2

(* ---- Device ---- *)

let test_device_event_order () =
  let d = Device.create Arch.a100 in
  let log = ref [] in
  Device.add_probe d
    {
      Device.probe_name = "log";
      on_event =
        (fun ev ->
          let tag =
            match ev with
            | Device.Api _ -> "api"
            | Device.Malloc _ -> "malloc"
            | Device.Free _ -> "free"
            | Device.Memcpy _ -> "memcpy"
            | Device.Memset _ -> "memset"
            | Device.Launch_begin _ -> "launch_begin"
            | Device.Launch_end _ -> "launch_end"
            | Device.Sync _ -> "sync"
          in
          log := tag :: !log);
    };
  let a = Device.malloc d 1024 in
  let k =
    Kernel.make ~name:"k" ~grid:(Dim3.make 1) ~block:(Dim3.make 32)
      ~regions:[ Kernel.region ~base:a.Device_mem.base ~bytes:1024 ~accesses:10 () ]
      ()
  in
  ignore (Device.launch d k);
  Device.synchronize d;
  let seq = List.rev !log in
  Alcotest.(check (list string)) "event sequence"
    [ "api"; "malloc"; "api"; "api"; "launch_begin"; "launch_end"; "api"; "api"; "sync"; "api" ]
    seq

let test_device_grid_ids () =
  let d = Device.create Arch.a100 in
  let k = mk_kernel "k" in
  let ids = ref [] in
  Device.add_probe d
    {
      Device.probe_name = "ids";
      on_event =
        (fun ev ->
          match ev with
          | Device.Launch_begin i -> ids := i.Device.grid_id :: !ids
          | _ -> ());
    };
  ignore (Device.launch d k);
  ignore (Device.launch d k);
  ignore (Device.launch d k);
  Alcotest.(check (list int)) "monotonic grid ids" [ 1; 2; 3 ] (List.rev !ids);
  check_int "launch count" 3 (Device.launches d)

let test_device_api_names () =
  let nv = Device.create Arch.a100 in
  let amd = Device.create Arch.mi300x in
  check_string "cuda prefix" "cudaMalloc" (Device.api_name nv "Malloc");
  check_string "hip prefix" "hipMalloc" (Device.api_name amd "Malloc")

let test_device_probe_removal () =
  let d = Device.create Arch.a100 in
  let hits = ref 0 in
  Device.add_probe d { Device.probe_name = "p"; on_event = (fun _ -> incr hits) };
  ignore (Device.malloc d 512);
  Device.remove_probe d "p";
  ignore (Device.malloc d 512);
  check_int "no events after removal" 3 !hits

let test_device_sample_cap () =
  let d = Device.create Arch.a100 in
  Device.set_sample_cap d 4;
  let a = Device.malloc d 65536 in
  let k =
    Kernel.make ~name:"k" ~grid:(Dim3.make 1) ~block:(Dim3.make 32)
      ~regions:
        [ Kernel.region ~base:a.Device_mem.base ~bytes:65536 ~accesses:100000 () ]
      ()
  in
  let records = ref 0 in
  let weight = ref 0 in
  Device.set_instrument d
    {
      Device.instr_name = "count";
      materialize = true;
      on_kernel_entry = ignore;
      on_region = (fun _ _ -> ());
      on_access =
        (fun _ a ->
          incr records;
          weight := !weight + a.Warp.weight);
      on_access_batch = None;
      on_kernel_exit = (fun _ _ -> ());
    };
  let stats = Device.launch d k in
  check_int "records capped" 4 !records;
  check_int "weights exact" 100000 !weight;
  check_int "true accesses exact" 100000 stats.Device.true_accesses;
  Alcotest.check_raises "invalid cap"
    (Invalid_argument "Device.set_sample_cap: must be positive") (fun () ->
      Device.set_sample_cap d 0)

let test_device_managed_registers_uvm () =
  let d = Device.create Arch.a100 in
  let a = Device.malloc_managed d (4 * 1024 * 1024) in
  check_bool "registered" true (Uvm.is_managed (Device.uvm d) a.Device_mem.base);
  Device.free d a.Device_mem.base;
  check_bool "unregistered on free" false (Uvm.is_managed (Device.uvm d) a.Device_mem.base)

let test_device_clock_advances () =
  let d = Device.create Arch.a100 in
  let t0 = Device.now_us d in
  Device.memcpy d ~dst:0 ~src:0 ~bytes:(1 lsl 20) ~kind:Device.Host_to_device ();
  check_bool "memcpy advances clock" true (Device.now_us d > t0)

let suite =
  [
    ("arch lanes", `Quick, test_arch_lanes);
    ("arch vendors", `Quick, test_arch_vendors);
    ("clock", `Quick, test_clock);
    ("dim3", `Quick, test_dim3);
    ("hostctx balance", `Quick, test_hostctx_balance);
    ("hostctx exception safety", `Quick, test_hostctx_exception_safe);
    ("device_mem roundtrip", `Quick, test_devmem_roundtrip);
    ("device_mem double free", `Quick, test_devmem_double_free);
    ("device_mem find_containing", `Quick, test_devmem_find_containing);
    ("device_mem oom", `Quick, test_devmem_oom);
    ("device_mem coalesce+reuse", `Quick, test_devmem_coalesce_reuse);
    qtest prop_devmem_invariants;
    ("kernel accessors", `Quick, test_kernel_accessors);
    ("kernel invalid region", `Quick, test_kernel_invalid_region);
    ("sass roundtrip", `Quick, test_sass_roundtrip);
    ("sass memory pcs", `Quick, test_sass_memory_pcs);
    ("sass parse error", `Quick, test_sass_parse_error);
    qtest prop_sass_roundtrip;
    ("warp weights sum", `Quick, test_warp_weights_sum);
    ("warp addresses in bounds", `Quick, test_warp_addresses_in_bounds);
    ("warp region coverage", `Quick, test_warp_region_coverage);
    qtest prop_warp_weights;
    ("cost roofline", `Quick, test_cost_roofline);
    ("cost memcpy kinds", `Quick, test_cost_memcpy_kinds);
    ("cost transfer linear", `Quick, test_cost_transfer_linear);
    ("device event order", `Quick, test_device_event_order);
    ("device grid ids", `Quick, test_device_grid_ids);
    ("device api names", `Quick, test_device_api_names);
    ("device probe removal", `Quick, test_device_probe_removal);
    ("device sample cap", `Quick, test_device_sample_cap);
    ("device managed registers uvm", `Quick, test_device_managed_registers_uvm);
    ("device clock advances", `Quick, test_device_clock_advances);
  ]
