let () =
  Alcotest.run "pasta"
    [
      ("util", Test_util.suite);
      ("gpusim", Test_gpusim.suite);
      ("uvm", Test_uvm.suite);
      ("vendor", Test_vendor.suite);
      ("dlfw", Test_dlfw.suite);
      ("pasta-core", Test_pasta_core.suite);
      ("tools", Test_tools.suite);
      ("megatron", Test_megatron.suite);
      ("instr-tools", Test_instr_tools.suite);
      ("tpu", Test_tpu.suite);
      ("export-tools", Test_export_tools.suite);
      ("determinism", Test_determinism.suite);
      ("coverage", Test_coverage.suite);
      ("training-features", Test_training_features.suite);
      ("properties", Test_properties.suite);
      ("faults", Test_faults.suite);
      ("streams", Test_streams.suite);
      ("pipeline", Test_pipeline.suite);
      ("capture", Test_capture.suite);
      ("models", Test_models.suite);
      ("telemetry", Test_telemetry.suite);
      ("sampling", Test_sampling.suite);
      ("columnar", Test_columnar.suite);
      ("fleet", Test_fleet.suite);
    ]
