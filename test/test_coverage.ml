(* Edge cases and cross-cutting properties that the per-module suites do
   not reach: concurrent sessions, analysis-model equivalence on synthetic
   streams, allocator cache-retry, UVM clipping, pretty-printer totality. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

(* ---- Analysis-model equivalence on synthetic kernel streams ---- *)

(* Generate a random stream of allocations + kernels over them; the
   GPU-resident and CPU-trace working-set tools must agree exactly. *)
let prop_analysis_models_equivalent =
  QCheck.Test.make ~name:"working sets agree across analysis models (synthetic)" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 8) (pair (int_range 1 64) (int_range 1 4)))
    (fun spec ->
      let run variant =
        let device = Gpusim.Device.create Gpusim.Arch.a100 in
        Gpusim.Device.set_sample_cap device 16;
        let mc = Pasta_tools.Memory_charact.create ~variant () in
        let session =
          Pasta.Session.attach ~tool:(Pasta_tools.Memory_charact.tool mc) device
        in
        let buffers =
          List.map
            (fun (kb, _) -> Gpusim.Device.malloc device (kb * 1024))
            spec
        in
        List.iteri
          (fun i (kb, nregions) ->
            let base = (List.nth buffers i).Gpusim.Device_mem.base in
            let regions =
              List.init nregions (fun j ->
                  Gpusim.Kernel.region ~base:(base + (j * 256))
                    ~bytes:(min 256 ((kb * 1024) - (j * 256)))
                    ~accesses:(100 * (j + 1))
                    ())
            in
            ignore
              (Gpusim.Device.launch device
                 (Gpusim.Kernel.make
                    ~name:(Printf.sprintf "synthetic_%d" i)
                    ~grid:(Gpusim.Dim3.make 4) ~block:(Gpusim.Dim3.make 64) ~regions ())))
          spec;
        let _ = Pasta.Session.detach session in
        Pasta_tools.Memory_charact.kernel_footprints mc
      in
      let gpu = run Pasta_tools.Memory_charact.Gpu in
      let cpu = run Pasta_tools.Memory_charact.Cpu_sanitizer in
      gpu = cpu)

(* ---- Concurrent sessions ---- *)

let test_two_sessions_coexist () =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let kf = Pasta_tools.Kernel_freq.create () in
  let tx = Pasta.Trace_export.create () in
  let s1 = Pasta.Session.attach ~tool:(Pasta_tools.Kernel_freq.tool kf) device in
  let s2 = Pasta.Session.attach ~tool:(Pasta.Trace_export.tool tx) device in
  let x = Dlfw.Ops.new_tensor ctx [ 16 ] Dlfw.Dtype.F32 in
  let y = Dlfw.Ops.relu ctx x in
  Dlfw.Tensor.release x;
  Dlfw.Tensor.release y;
  let r2 = Pasta.Session.detach s2 in
  let r1 = Pasta.Session.detach s1 in
  check_int "session 1 saw the kernel" 1 r1.Pasta.Session.kernels;
  check_int "session 2 saw the kernel" 1 r2.Pasta.Session.kernels;
  check_bool "trace captured too" true (Pasta.Trace_export.event_count tx > 0);
  Dlfw.Ctx.destroy ctx

let test_annotations_route_to_innermost () =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let kf_outer = Pasta_tools.Kernel_freq.create () in
  let kf_inner = Pasta_tools.Kernel_freq.create () in
  let s_outer =
    Pasta.Session.attach ~tool:(Pasta_tools.Kernel_freq.tool kf_outer) device
  in
  let s_inner =
    Pasta.Session.attach ~tool:(Pasta_tools.Kernel_freq.tool kf_inner) device
  in
  (* pasta.start binds to the innermost (most recently attached) session. *)
  Pasta.Session.start ();
  check_int "inner range opened" 1
    (Pasta.Range.annotation_depth (Pasta.Processor.range (Pasta.Session.processor s_inner)));
  check_int "outer untouched" 0
    (Pasta.Range.annotation_depth (Pasta.Processor.range (Pasta.Session.processor s_outer)));
  Pasta.Session.end_ ();
  ignore (Pasta.Session.detach s_inner);
  ignore (Pasta.Session.detach s_outer)

(* ---- Allocator cache retry ---- *)

let tiny_arch =
  { Gpusim.Arch.a100 with Gpusim.Arch.name = "tiny"; mem_bytes = 32 * 1024 * 1024 }

let test_allocator_cache_retry () =
  let device = Gpusim.Device.create tiny_arch in
  let pool = Dlfw.Allocator.create device in
  (* A huge block gets its own exact-size segment; freeing caches it. *)
  let a = Dlfw.Allocator.alloc pool (12 * 1024 * 1024) in
  Dlfw.Allocator.free pool a;
  check_bool "segment cached" true (Dlfw.Allocator.reserved_bytes pool > 0);
  (* 24 MB does not fit alongside the cached 12 MB on a 32 MB device: the
     allocator must release the cache and retry rather than fail. *)
  let b = Dlfw.Allocator.alloc pool (24 * 1024 * 1024) in
  check_bool "retry after releasing cache succeeded" true (b.Dlfw.Allocator.bytes > 0);
  Dlfw.Allocator.free pool b;
  Dlfw.Allocator.destroy pool

let test_allocator_hard_oom () =
  let device = Gpusim.Device.create tiny_arch in
  let pool = Dlfw.Allocator.create device in
  check_bool "oom propagates" true
    (try
       ignore (Dlfw.Allocator.alloc pool (64 * 1024 * 1024));
       false
     with Gpusim.Device_mem.Out_of_memory _ -> true);
  Dlfw.Allocator.destroy pool

(* ---- UVM clipping ---- *)

let test_uvm_clips_to_range () =
  let clock = Gpusim.Clock.create () in
  let page = Gpusim.Arch.a100.Gpusim.Arch.uvm_page_bytes in
  let u = Gpusim.Uvm.create Gpusim.Arch.a100 clock ~capacity:(16 * page) in
  Gpusim.Uvm.register_range u ~base:0 ~bytes:(2 * page);
  (* Prefetch far past the end of the range: must clip, not crash. *)
  Gpusim.Uvm.prefetch u ~base:page ~bytes:(100 * page);
  check_int "clipped to range" 1 (Gpusim.Uvm.resident_pages u);
  let f = ref 0 in
  Gpusim.Uvm.touch u ~base:0 ~bytes:(50 * page) ~faulted_pages:f;
  check_int "touch clipped too" 1 !f;
  Gpusim.Uvm.check_invariants u

(* ---- Event vocabulary: one sample per constructor ---- *)

let sample_ki =
  {
    Pasta.Event.device_id = 0;
    grid_id = 1;
    stream = 0;
    name = "k";
    grid = Gpusim.Dim3.make 1;
    block = Gpusim.Dim3.make 32;
    shared_bytes = 0;
    arg_ptrs = [];
    py_stack = [];
    native_stack = [];
  }

let sample_access =
  { Pasta.Event.addr = 0; size = 4; write = true; pc = 16; warp = 0; weight = 2 }

let sample_batch =
  Gpusim.Warp.batch_of_arrays ~region:0 ~chunk:0 ~pc:16 ~addrs:[| 0; 64 |]
    ~sizes:[| 4; 4 |] ~warps:[| 0; 1 |] ~weights:[| 1; 2 |]
    ~writes:(Bytes.make 2 '\000')

let sample_summary =
  let om = Pasta.Objmap.create () in
  Pasta.Devagg.merge [| Pasta.Devagg.aggregate (Pasta.Objmap.view om) sample_batch |]

(* Exactly one payload per constructor; the [all_kinds] cross-check below
   fails if a new constructor is added without extending this list. *)
let sample_payloads =
  [
    Pasta.Event.Driver_call { name = "LaunchKernel"; phase = `Enter };
    Pasta.Event.Runtime_call { name = "Memcpy"; phase = `Exit };
    Pasta.Event.Kernel_launch
      {
        info = sample_ki;
        phase = `End { Pasta.Event.duration_us = 1.0; true_accesses = 2; faulted_pages = 0 };
      };
    Pasta.Event.Memory_copy { bytes = 1; direction = `D2d; stream = 1 };
    Pasta.Event.Memory_set { addr = 0; bytes = 16; value = 0 };
    Pasta.Event.Memory_alloc { addr = 0; bytes = 16; managed = false };
    Pasta.Event.Memory_free { addr = 0; bytes = 16 };
    Pasta.Event.Synchronization { scope = `Stream 2 };
    Pasta.Event.Global_access { kernel = sample_ki; access = sample_access };
    Pasta.Event.Access_batch { kernel = sample_ki; batch = sample_batch };
    Pasta.Event.Device_summary { kernel = sample_ki; summary = sample_summary };
    Pasta.Event.Shared_access { kernel = sample_ki; access = sample_access };
    Pasta.Event.Kernel_region
      {
        kernel = sample_ki;
        region = { Pasta.Event.base = 0; extent = 4; accesses = 1; written = true };
      };
    Pasta.Event.Barrier { kernel = sample_ki; count = 3 };
    Pasta.Event.Kernel_profile { kernel = sample_ki; profile = Gpusim.Kernel.no_profile };
    Pasta.Event.Operator { name = "aten::x"; phase = `Exit; seq = 9 };
    Pasta.Event.Tensor_alloc
      { ptr = 0; bytes = 8; pool_allocated = 8; pool_reserved = 8; tag = "t" };
    Pasta.Event.Tensor_free { ptr = 0; bytes = 8; pool_allocated = 0; pool_reserved = 8 };
    Pasta.Event.Annotation { label = "r"; phase = `End };
    Pasta.Event.Tool_quarantined { tool = "t"; failures = 3 };
  ]

let test_event_pp_total () =
  List.iter
    (fun payload ->
      let s =
        Format.asprintf "%a" Pasta.Event.pp { Pasta.Event.device = 0; time_us = 0.0; payload }
      in
      check_bool (Pasta.Event.kind_name payload) true (String.length s > 0))
    sample_payloads

let test_all_kinds_closed () =
  let sorted l = List.sort compare l in
  (* [all_kinds] lists each constructor's kind exactly once, and the
     constructor samples above cover every one of them. *)
  Alcotest.(check (list string))
    "all_kinds matches the constructor samples"
    (sorted Pasta.Event.all_kinds)
    (sorted (List.map Pasta.Event.kind_name sample_payloads));
  check_int "no duplicate kinds"
    (List.length Pasta.Event.all_kinds)
    (List.length (List.sort_uniq compare Pasta.Event.all_kinds))

(* ---- Every event kind has a live producer ---- *)

(* Sessions over each vendor backend and analysis model, all feeding one
   [seen] table; at the end every kind in [Event.all_kinds] must have
   appeared.  A constructor nothing can emit is dead vocabulary. *)
let test_every_kind_produced () =
  let seen = Hashtbl.create 64 in
  let mark payload = Hashtbl.replace seen (Pasta.Event.kind_name payload) () in
  let collector ?(fine = Pasta.Tool.No_fine_grained) ?(batch_aware = false) () =
    {
      (Pasta.Tool.default ~fine_grained:fine "collector") with
      Pasta.Tool.on_event = (fun ev -> mark ev.Pasta.Event.payload);
      on_access_batch = (if batch_aware then Some (fun _ _ -> ()) else None);
    }
  in
  let collect ?fine ?batch_aware arch f =
    let device = Gpusim.Device.create arch in
    let ctx = Dlfw.Ctx.create device in
    let (), result =
      Pasta.Session.run ~tool:(collector ?fine ?batch_aware ()) device (fun () ->
          f device ctx)
    in
    List.iter
      (fun (e : Pasta.Event.t) -> mark e.Pasta.Event.payload)
      result.Pasta.Session.health.Pasta.Session.incidents;
    Dlfw.Ctx.destroy ctx
  in
  let relu ctx =
    let x = Dlfw.Ops.new_tensor ctx [ 256 ] Dlfw.Dtype.F32 in
    let y = Dlfw.Ops.relu ctx x in
    Dlfw.Tensor.release x;
    Dlfw.Tensor.release y
  in
  (* NVIDIA Sanitizer, coarse domains + framework hooks + annotations:
     driver_call, kernel_launch, memory_copy/set/alloc/free,
     synchronization, operator, tensor_alloc/free, annotation. *)
  collect Gpusim.Arch.a100 (fun device ctx ->
      Pasta.Session.start ~label:"roi" ();
      relu ctx;
      let a = Gpusim.Device.malloc device 4096 in
      let base = a.Gpusim.Device_mem.base in
      Gpusim.Device.memset device ~addr:base ~bytes:64 ~value:0 ();
      Gpusim.Device.memcpy device ~dst:base ~src:base ~bytes:64
        ~kind:Gpusim.Device.Device_to_device ();
      Gpusim.Device.synchronize device;
      Gpusim.Device.free device base;
      Pasta.Session.end_ ~label:"roi" ());
  (* AMD Rocprofiler: the only runtime_call producer. *)
  collect Gpusim.Arch.mi300x (fun device _ctx ->
      let a = Gpusim.Device.malloc device 4096 in
      Gpusim.Device.memcpy device ~dst:a.Gpusim.Device_mem.base
        ~src:a.Gpusim.Device_mem.base ~bytes:64
        ~kind:Gpusim.Device.Device_to_device ();
      Gpusim.Device.synchronize device);
  (* Host trace analysis, per-record and batched: global_access /
     access_batch. *)
  collect ~fine:Pasta.Tool.Cpu_sanitizer Gpusim.Arch.a100 (fun _ ctx -> relu ctx);
  collect ~fine:Pasta.Tool.Cpu_sanitizer ~batch_aware:true Gpusim.Arch.a100
    (fun _ ctx -> relu ctx);
  (* Device-resident analysis models: kernel_region / device_summary. *)
  collect ~fine:Pasta.Tool.Gpu_accelerated Gpusim.Arch.a100 (fun _ ctx -> relu ctx);
  collect ~fine:Pasta.Tool.Gpu_parallel Gpusim.Arch.a100 (fun _ ctx -> relu ctx);
  (* Instruction-level patching: kernel_profile, shared_access, barrier.
     Elementwise kernels use no shared memory — a GEMM does. *)
  collect ~fine:Pasta.Tool.Instruction_level Gpusim.Arch.a100 (fun _ ctx ->
      let x = Dlfw.Ops.new_tensor ctx [ 64; 64 ] Dlfw.Dtype.F32 in
      let w = Dlfw.Ops.new_tensor ctx [ 64; 64 ] Dlfw.Dtype.F32 in
      let y = Dlfw.Ops.linear ctx ~input:x ~weight:w ~bias:None ~m:64 ~k:64 ~n:64 in
      List.iter Dlfw.Tensor.release [ x; w; y ]);
  (* The supervision layer's own event, via a tripped circuit breaker. *)
  collect Gpusim.Arch.a100 (fun device _ctx ->
      let bomb =
        {
          (Pasta.Tool.default "bomb") with
          Pasta.Tool.on_event = (fun _ -> failwith "boom");
        }
      in
      let (), inner =
        Pasta.Session.run ~tool:bomb device (fun () ->
            for _ = 1 to 20 do
              Gpusim.Device.synchronize device
            done)
      in
      List.iter
        (fun (e : Pasta.Event.t) -> mark e.Pasta.Event.payload)
        inner.Pasta.Session.health.Pasta.Session.incidents);
  List.iter
    (fun kind -> check_bool ("produced: " ^ kind) true (Hashtbl.mem seen kind))
    Pasta.Event.all_kinds

(* ---- Every event kind has a registry consumer ---- *)

(* kind -> a registered tool that actually uses it (not a wildcard
   pass-through).  Kept by hand so removing a consumer breaks the test. *)
let registry_consumers =
  [
    ("driver_call", "trace_export");
    ("runtime_call", "trace_export");
    ("kernel_launch", "kernel_freq");
    ("memory_copy", "transfer");
    ("memory_set", "trace_export");
    ("memory_alloc", "memory_charact");
    ("memory_free", "memory_charact");
    ("synchronization", "trace_export");
    ("global_access", "memory_charact_cs_cpu");
    ("access_batch", "memory_charact_cs_cpu");
    ("device_summary", "memory_charact_par");
    ("shared_access", "barrier_stall");
    ("kernel_region", "hotness");
    ("barrier", "barrier_stall");
    ("kernel_profile", "divergence");
    ("operator", "op_summary");
    ("tensor_alloc", "mem_timeline");
    ("tensor_free", "mem_timeline");
    ("annotation", "trace_export");
    ("tool_quarantined", "trace_export");
  ]

let test_every_kind_consumed () =
  Pasta_tools.Tools.register_all ();
  Alcotest.(check (list string))
    "consumer table covers the whole vocabulary"
    (List.sort compare Pasta.Event.all_kinds)
    (List.sort compare (List.map fst registry_consumers));
  List.iter
    (fun (kind, name) ->
      check_bool
        (Printf.sprintf "consumer of %s (%s) is registered" kind name)
        true
        (Pasta.Registry.find name <> None))
    registry_consumers

let test_consumers_functional () =
  (* trace_export materializes the four API-surface kinds it just gained. *)
  let tx = Pasta.Trace_export.create () in
  List.iter
    (fun payload ->
      Pasta.Trace_export.record tx { Pasta.Event.device = 0; time_us = 1.0; payload })
    [
      Pasta.Event.Driver_call { name = "LaunchKernel"; phase = `Exit };
      Pasta.Event.Runtime_call { name = "Memcpy"; phase = `Exit };
      Pasta.Event.Memory_set { addr = 0; bytes = 16; value = 0 };
      Pasta.Event.Synchronization { scope = `Device };
    ];
  check_int "api-surface instants materialized" 4 (Pasta.Trace_export.event_count tx);
  let json = Pasta.Trace_export.to_json tx in
  List.iter
    (fun cat ->
      check_bool ("trace has " ^ cat) true
        (Astring_contains.contains json (Printf.sprintf {|"cat":"%s"|} cat)))
    [ "driver_api"; "runtime_api"; "memory"; "sync" ];
  (* barrier_stall consumes the dynamic fine-grained stream. *)
  let b = Pasta_tools.Barrier_stall.create () in
  let tool = Pasta_tools.Barrier_stall.tool b in
  tool.Pasta.Tool.on_event
    {
      Pasta.Event.device = 0;
      time_us = 1.0;
      payload = Pasta.Event.Barrier { kernel = sample_ki; count = 3 };
    };
  tool.Pasta.Tool.on_event
    {
      Pasta.Event.device = 0;
      time_us = 2.0;
      payload = Pasta.Event.Shared_access { kernel = sample_ki; access = sample_access };
    };
  check_int "dynamic barriers counted" 3 (Pasta_tools.Barrier_stall.dynamic_barriers b);
  check_int "dynamic shared weight counted" 2 (Pasta_tools.Barrier_stall.dynamic_shared b);
  (* memory_charact's sanitizer-CPU variant opts into batch delivery. *)
  let mc =
    Pasta_tools.Memory_charact.tool
      (Pasta_tools.Memory_charact.create ~variant:Pasta_tools.Memory_charact.Cpu_sanitizer ())
  in
  check_bool "CS-CPU is batch-aware" true (mc.Pasta.Tool.on_access_batch <> None)

let test_misc_pps () =
  check_bool "arch pp" true (String.length (Format.asprintf "%a" Gpusim.Arch.pp Gpusim.Arch.tpu_v4) > 0);
  let k =
    Gpusim.Kernel.make ~name:"k" ~grid:(Gpusim.Dim3.make 2) ~block:(Gpusim.Dim3.make 32)
      ~regions:[ Gpusim.Kernel.region ~base:0 ~bytes:64 ~accesses:16 () ]
      ()
  in
  check_bool "kernel pp" true
    (Astring_contains.contains (Format.asprintf "%a" Gpusim.Kernel.pp k) "k<<<");
  let i = { Gpusim.Instr.pc = 0x40; opcode = Gpusim.Instr.Ld_global; operands = "R2, [R4]" } in
  check_bool "instr pp" true
    (Astring_contains.contains (Format.asprintf "%a" Gpusim.Instr.pp i) "LDG.E")

(* ---- Misc small behaviours ---- *)

let test_processor_without_tool () =
  let p = Pasta.Processor.create ~device:0 () in
  (* Submitting with no tool installed must be a safe no-op. *)
  Pasta.Processor.submit p ~time_us:0.0
    (Pasta.Event.Memory_alloc { addr = 0; bytes = 64; managed = false });
  Pasta.Processor.set_tool p (Pasta.Tool.default "t");
  Pasta.Processor.clear_tool p;
  check_bool "tool cleared" true (Pasta.Processor.tool p = None);
  check_int "events still counted" 1 (Pasta.Processor.stats p).Pasta.Processor.events_seen

let test_registry_replacement () =
  Pasta.Registry.register "replaceme" (fun () -> Pasta.Tool.default "v1");
  Pasta.Registry.register "replaceme" (fun () -> Pasta.Tool.default "v2");
  match Pasta.Registry.find "replaceme" with
  | Some mk -> Alcotest.(check string) "latest wins" "v2" (mk ()).Pasta.Tool.name
  | None -> Alcotest.fail "expected tool"

let test_runner_default_matches_explicit () =
  let count abbr run =
    let device = Gpusim.Device.create Gpusim.Arch.a100 in
    let ctx = Dlfw.Ctx.create device in
    run ctx abbr;
    let n = Gpusim.Device.launches device in
    Dlfw.Ctx.destroy ctx;
    n
  in
  let via_default =
    count "BERT" (fun ctx abbr ->
        ignore (Dlfw.Runner.run_default ctx abbr ~mode:Dlfw.Runner.Inference))
  in
  let via_explicit =
    count "BERT" (fun ctx abbr ->
        let m = Dlfw.Runner.build ctx abbr in
        Dlfw.Runner.run ctx m ~mode:Dlfw.Runner.Inference
          ~iters:(Dlfw.Runner.default_iters ~abbr ~mode:Dlfw.Runner.Inference))
  in
  check_int "run_default = build + run" via_explicit via_default

let prop_warp_strided_in_bounds =
  QCheck.Test.make ~name:"strided warp accesses stay inside the region" ~count:200
    QCheck.(pair (int_range 0 4096) (int_range 1 100))
    (fun (stride, accesses) ->
      let k =
        Gpusim.Kernel.make ~name:"s" ~grid:(Gpusim.Dim3.make 1)
          ~block:(Gpusim.Dim3.make 32)
          ~regions:
            [
              Gpusim.Kernel.region ~base:0x1000 ~bytes:2048 ~accesses
                ~pattern:(Gpusim.Kernel.Strided stride) ();
            ]
          ()
      in
      let rng = Pasta_util.Det_rng.create 17L in
      let ok = ref true in
      ignore
        (Gpusim.Warp.generate ~rng ~warp_size:32 ~max_records_per_region:64 k
           ~f:(fun a ->
             if a.Gpusim.Warp.addr < 0x1000 || a.Gpusim.Warp.addr >= 0x1000 + 2048 then
               ok := false));
      !ok)

let suite =
  [
    qtest prop_analysis_models_equivalent;
    ("two sessions coexist", `Quick, test_two_sessions_coexist);
    ("annotations route to innermost", `Quick, test_annotations_route_to_innermost);
    ("allocator cache retry", `Quick, test_allocator_cache_retry);
    ("allocator hard OOM", `Quick, test_allocator_hard_oom);
    ("uvm clips to range", `Quick, test_uvm_clips_to_range);
    ("event pp total", `Quick, test_event_pp_total);
    ("all_kinds closed over constructors", `Quick, test_all_kinds_closed);
    ("every kind has a producer", `Quick, test_every_kind_produced);
    ("every kind has a registry consumer", `Quick, test_every_kind_consumed);
    ("new consumers functional", `Quick, test_consumers_functional);
    ("misc pps", `Quick, test_misc_pps);
    ("processor without tool", `Quick, test_processor_without_tool);
    ("registry replacement", `Quick, test_registry_replacement);
    ("runner default matches explicit", `Quick, test_runner_default_matches_explicit);
    qtest prop_warp_strided_in_bounds;
  ]
