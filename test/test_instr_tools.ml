(* Instruction-level analysis: kernel profiles, the Sanitizer
   instruction-patching mode, and the divergence / barrier-stall /
   value-check tools (paper §III-H). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

(* ---- Kernel.profile ---- *)

let test_profile_validation () =
  Alcotest.check_raises "divergent > branches"
    (Invalid_argument "Kernel.profile: divergent_branches > branches") (fun () ->
      ignore (Gpusim.Kernel.profile ~branches:1 ~divergent_branches:2 ()));
  Alcotest.check_raises "conflicts > shared"
    (Invalid_argument "Kernel.profile: bank_conflicts > shared_accesses") (fun () ->
      ignore (Gpusim.Kernel.profile ~shared_accesses:1 ~bank_conflicts:2 ()));
  Alcotest.check_raises "empty range"
    (Invalid_argument "Kernel.profile: empty value range") (fun () ->
      ignore (Gpusim.Kernel.profile ~value_min:1.0 ~value_max:0.0 ()));
  Alcotest.check_raises "negative stall"
    (Invalid_argument "Kernel.profile: negative stall") (fun () ->
      ignore (Gpusim.Kernel.profile ~barrier_stall_us:(-1.0) ()))

let prop_profile_builders_valid =
  QCheck.Test.make ~name:"dlfw kernel builders always produce valid profiles"
    ~count:100
    QCheck.(pair (int_range 1 512) (int_range 1 512))
    (fun (m, n) ->
      (* gemm exercise through a tiny linear op. *)
      let ctx = Dlfw.Ctx.create (Gpusim.Device.create Gpusim.Arch.a100) in
      let ok = ref true in
      Gpusim.Device.add_probe ctx.Dlfw.Ctx.device
        {
          Gpusim.Device.probe_name = "p";
          on_event =
            (fun ev ->
              match ev with
              | Gpusim.Device.Launch_begin info ->
                  let p = info.Gpusim.Device.kernel.Gpusim.Kernel.prof in
                  if
                    p.Gpusim.Kernel.divergent_branches > p.Gpusim.Kernel.branches
                    || p.Gpusim.Kernel.bank_conflicts > p.Gpusim.Kernel.shared_accesses
                    || p.Gpusim.Kernel.value_min > p.Gpusim.Kernel.value_max
                  then ok := false
              | _ -> ());
        };
      let x = Dlfw.Ops.new_tensor ctx [ m; 16 ] Dlfw.Dtype.F32 in
      let w = Dlfw.Ops.new_tensor ctx [ n; 16 ] Dlfw.Dtype.F32 in
      let y = Dlfw.Ops.linear ctx ~input:x ~weight:w ~bias:None ~m ~k:16 ~n in
      let z = Dlfw.Ops.relu ctx y in
      List.iter Dlfw.Tensor.release [ x; w; y; z ];
      Dlfw.Ctx.destroy ctx;
      !ok)

(* ---- Sanitizer instruction patching ---- *)

let launch_profiled ?(barriers = 0) device prof =
  let a = Gpusim.Device.malloc device 4096 in
  let k =
    Gpusim.Kernel.make ~name:"profiled_kernel" ~grid:(Gpusim.Dim3.make 4)
      ~block:(Gpusim.Dim3.make 64)
      ~regions:
        [ Gpusim.Kernel.region ~base:a.Gpusim.Device_mem.base ~bytes:4096 ~accesses:64 () ]
      ~shared_bytes:2048 ~barriers ~prof ()
  in
  ignore (Gpusim.Device.launch device k)

let rich_profile =
  Gpusim.Kernel.profile ~branches:1000 ~divergent_branches:100 ~shared_accesses:500
    ~bank_conflicts:50 ~barrier_stall_us:7.0 ~value_min:(-2.0) ~value_max:99999.0
    ~redundant_loads:10 ()

let test_instruction_analysis_masking () =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let s = Vendor.Sanitizer.attach device in
  let seen = ref Gpusim.Kernel.no_profile in
  Vendor.Sanitizer.patch_module s
    (Vendor.Sanitizer.Instruction_analysis
       {
         classes = [ Vendor.Sanitizer.Control_flow ];
         on_profile = (fun _ p -> seen := p);
         on_shared_access = None;
         on_barrier = None;
       });
  launch_profiled device rich_profile;
  check_int "branches visible" 1000 !seen.Gpusim.Kernel.branches;
  check_int "divergence visible" 100 !seen.Gpusim.Kernel.divergent_branches;
  check_int "unpatched shared zeroed" 0 !seen.Gpusim.Kernel.shared_accesses;
  Alcotest.(check (float 0.0)) "unpatched barrier zeroed" 0.0
    !seen.Gpusim.Kernel.barrier_stall_us;
  Alcotest.(check (float 0.0)) "unpatched values zeroed" 0.0
    !seen.Gpusim.Kernel.value_max;
  check_bool "collect charged" true
    ((Vendor.Sanitizer.phases s).Vendor.Phases.collect_us > 0.0)

let test_instruction_analysis_all_classes () =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let s = Vendor.Sanitizer.attach device in
  let seen = ref Gpusim.Kernel.no_profile in
  let shared = ref [] in
  let barriers = ref 0 in
  Vendor.Sanitizer.patch_module s
    (Vendor.Sanitizer.Instruction_analysis
       {
         classes = Vendor.Sanitizer.all_instr_classes;
         on_profile = (fun _ p -> seen := p);
         on_shared_access = Some (fun _ a -> shared := a :: !shared);
         on_barrier = Some (fun _ n -> barriers := !barriers + n);
       });
  launch_profiled ~barriers:3 device rich_profile;
  check_int "shared" 500 !seen.Gpusim.Kernel.shared_accesses;
  check_int "conflicts" 50 !seen.Gpusim.Kernel.bank_conflicts;
  Alcotest.(check (float 1e-9)) "stall" 7.0 !seen.Gpusim.Kernel.barrier_stall_us;
  check_int "redundant" 10 !seen.Gpusim.Kernel.redundant_loads;
  (* Synthesized shared-access records: bounded count, weights summing
     exactly to the dynamic count, addresses inside the static allocation. *)
  check_bool "shared records bounded" true
    (List.length !shared > 0 && List.length !shared <= 16);
  check_int "shared weights sum to dynamic count" 500
    (List.fold_left (fun acc a -> acc + a.Gpusim.Warp.weight) 0 !shared);
  check_bool "shared addrs in window" true
    (List.for_all
       (fun a -> a.Gpusim.Warp.addr >= 0 && a.Gpusim.Warp.addr < 2048)
       !shared);
  check_int "barrier count surfaced" 3 !barriers;
  (* The synthesis is a pure function of the kernel: a second launch
     produces the identical record list. *)
  let first = !shared in
  shared := [];
  launch_profiled ~barriers:3 device rich_profile;
  check_bool "synthesis deterministic" true (first = !shared)

(* ---- Tools over a real model run ---- *)

let with_instr_tool tool f =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let (), result = Pasta.Session.run ~tool device (fun () -> f ctx) in
  Dlfw.Ctx.destroy ctx;
  result

let small_bert ctx = Dlfw.Bert.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx

let test_divergence_tool () =
  let d = Pasta_tools.Divergence.create () in
  let result =
    with_instr_tool (Pasta_tools.Divergence.tool d) (fun ctx ->
        Dlfw.Model.inference_iter ctx (small_bert ctx))
  in
  check_bool "profiles observed" true (Pasta_tools.Divergence.rows d <> []);
  check_int "one row bundle per kernel name seen" result.Pasta.Session.kernels
    (List.fold_left (fun acc r -> acc + r.Pasta_tools.Divergence.launches) 0
       (Pasta_tools.Divergence.rows d));
  check_bool "branches counted" true (Pasta_tools.Divergence.total_branches d > 0);
  check_bool "divergence bounded" true
    (Pasta_tools.Divergence.total_divergent d <= Pasta_tools.Divergence.total_branches d);
  (match Pasta_tools.Divergence.worst d with
  | Some r ->
      check_bool "rate in [0,1]" true
        (Pasta_tools.Divergence.divergence_rate r >= 0.0
        && Pasta_tools.Divergence.divergence_rate r <= 1.0)
  | None -> Alcotest.fail "expected a worst kernel");
  let report = Format.asprintf "%t" (Pasta_tools.Divergence.report d) in
  check_bool "report" true (Astring_contains.contains report "divergent")

let test_barrier_stall_tool () =
  let b = Pasta_tools.Barrier_stall.create () in
  let result =
    with_instr_tool (Pasta_tools.Barrier_stall.tool b) (fun ctx ->
        Dlfw.Model.inference_iter ctx (small_bert ctx))
  in
  check_bool "stall observed" true (Pasta_tools.Barrier_stall.total_stall_us b > 0.0);
  check_bool "fraction sane" true
    (Pasta_tools.Barrier_stall.stall_fraction b
       ~workload_us:result.Pasta.Session.phases.Vendor.Phases.workload_us
    < 1.0);
  (match Pasta_tools.Barrier_stall.rows b with
  | r :: _ ->
      check_bool "conflict rate bounded" true
        (Pasta_tools.Barrier_stall.conflict_rate r <= 1.0)
  | [] -> Alcotest.fail "expected rows");
  (* Instruction-level sessions surface the dynamic fine-grained stream;
     its weighted shared count must agree with the per-kernel profiles. *)
  check_bool "dynamic barriers observed" true
    (Pasta_tools.Barrier_stall.dynamic_barriers b > 0);
  let profile_shared =
    List.fold_left
      (fun acc r -> acc + r.Pasta_tools.Barrier_stall.shared_accesses)
      0
      (Pasta_tools.Barrier_stall.rows b)
  in
  check_int "dynamic shared weight matches profiles" profile_shared
    (Pasta_tools.Barrier_stall.dynamic_shared b);
  let report = Format.asprintf "%t" (Pasta_tools.Barrier_stall.report b) in
  check_bool "report has dynamic line" true
    (Astring_contains.contains report "dynamic:")

let test_value_check_tool () =
  let v = Pasta_tools.Value_check.create () in
  let _ =
    with_instr_tool (Pasta_tools.Value_check.tool v) (fun ctx ->
        Dlfw.Model.inference_iter ctx (small_bert ctx))
  in
  (* The softmax exponentials exceed the fp16 range. *)
  let flagged = Pasta_tools.Value_check.flagged v in
  check_bool "softmax flagged" true
    (List.exists
       (fun r ->
         Astring_contains.contains r.Pasta_tools.Value_check.kernel "softmax"
         && List.mem Pasta_tools.Value_check.Overflow r.Pasta_tools.Value_check.hazards)
       flagged);
  (* GEMMs re-read operand tiles: redundancy must be detected. *)
  (match Pasta_tools.Value_check.most_redundant v with
  | Some r -> check_bool "redundancy positive" true (Pasta_tools.Value_check.redundancy r > 0.0)
  | None -> Alcotest.fail "expected a redundant kernel");
  let report = Format.asprintf "%t" (Pasta_tools.Value_check.report v) in
  check_bool "report names hazard" true (Astring_contains.contains report "fp16-overflow")

let test_hazard_classifier () =
  let open Pasta_tools.Value_check in
  check_bool "fp16 max is a boundary" true
    (hazards_of_range ~value_min:0.0 ~value_max:fp16_max = []);
  check_bool "overflow" true
    (List.mem Overflow (hazards_of_range ~value_min:0.0 ~value_max:(fp16_max +. 1.0)));
  check_bool "negative overflow" true
    (List.mem Overflow (hazards_of_range ~value_min:(-70000.0) ~value_max:0.0));
  check_bool "underflow" true
    (List.mem Underflow (hazards_of_range ~value_min:1e-6 ~value_max:1e-5))

(* ---- Instruction-level tools vs range filter ---- *)

let test_profiles_respect_range () =
  let d = Pasta_tools.Divergence.create () in
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let range = Pasta.Range.create ~start_grid:1 ~end_grid:3 () in
  let (), _ =
    Pasta.Session.run ~range ~tool:(Pasta_tools.Divergence.tool d) device (fun () ->
        Dlfw.Model.inference_iter ctx (small_bert ctx))
  in
  check_int "only the first three kernels profiled" 3
    (List.fold_left (fun acc r -> acc + r.Pasta_tools.Divergence.launches) 0
       (Pasta_tools.Divergence.rows d));
  Dlfw.Ctx.destroy ctx

let suite =
  [
    ("profile validation", `Quick, test_profile_validation);
    qtest prop_profile_builders_valid;
    ("instruction analysis masking", `Quick, test_instruction_analysis_masking);
    ("instruction analysis all classes", `Quick, test_instruction_analysis_all_classes);
    ("divergence tool", `Quick, test_divergence_tool);
    ("barrier stall tool", `Quick, test_barrier_stall_tool);
    ("value check tool", `Quick, test_value_check_tool);
    ("hazard classifier", `Quick, test_hazard_classifier);
    ("profiles respect range", `Quick, test_profiles_respect_range);
  ]
