(* Trace capture & replay: codec round-trips over the whole payload
   vocabulary, corruption handling (strict vs tolerant), and the
   headline contract — replaying a recorded run produces byte-identical
   tool reports to the live run, at any domain count, with or without
   fault injection. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

let ( let* ) x f = QCheck.Gen.( >>= ) x f

(* ------------------------------------------------------------------ *)
(* Payload generators                                                  *)
(* ------------------------------------------------------------------ *)

let g_str = QCheck.Gen.(small_string ~gen:printable)
let g_nat = QCheck.Gen.int_range 0 1_000_000
let g_addr = QCheck.Gen.int_range 0 0x7FFF_FFFF

(* All floats round-trip exactly through their IEEE bits; a rational grid
   just keeps counterexamples readable. *)
let g_f =
  QCheck.Gen.map
    (fun i -> float_of_int i /. 16.0)
    (QCheck.Gen.int_range (-1_000_000_000) 1_000_000_000)

let g_phase = QCheck.Gen.oneofl [ `Enter; `Exit ]

let g_dim3 =
  QCheck.Gen.map3
    (fun x y z -> { Gpusim.Dim3.x; y; z })
    (QCheck.Gen.int_range 1 256)
    (QCheck.Gen.int_range 1 256)
    (QCheck.Gen.int_range 1 64)

let g_frame =
  QCheck.Gen.map3
    (fun file line symbol -> { Gpusim.Hostctx.file; line; symbol })
    g_str g_nat g_str

let g_info =
  let* device_id = QCheck.Gen.int_range 0 7 in
  let* grid_id = g_nat in
  let* stream = QCheck.Gen.int_range 0 15 in
  let* name = g_str in
  let* grid = g_dim3 in
  let* block = g_dim3 in
  let* shared_bytes = QCheck.Gen.int_range 0 65536 in
  let* arg_ptrs = QCheck.Gen.small_list g_addr in
  let* py_stack = QCheck.Gen.small_list g_frame in
  let* native_stack = QCheck.Gen.small_list g_frame in
  QCheck.Gen.return
    {
      Pasta.Event.device_id;
      grid_id;
      stream;
      name;
      grid;
      block;
      shared_bytes;
      arg_ptrs;
      py_stack;
      native_stack;
    }

let g_access =
  let* addr = g_addr in
  let* size = QCheck.Gen.int_range 1 16 in
  let* write = QCheck.Gen.bool in
  let* pc = g_nat in
  let* warp = QCheck.Gen.int_range 0 2047 in
  let* weight = QCheck.Gen.int_range 1 100_000 in
  QCheck.Gen.return { Pasta.Event.addr; size; write; pc; warp; weight }

let g_batch =
  let* len = QCheck.Gen.int_range 1 64 in
  let* region = QCheck.Gen.int_range 0 31 in
  let* chunk = QCheck.Gen.int_range 0 255 in
  let* pc = g_nat in
  let* addrs = QCheck.Gen.array_repeat len g_addr in
  let* sizes = QCheck.Gen.array_repeat len (QCheck.Gen.int_range 1 16) in
  let* warps = QCheck.Gen.array_repeat len (QCheck.Gen.int_range 0 2047) in
  let* weights = QCheck.Gen.array_repeat len (QCheck.Gen.int_range 1 100_000) in
  let* wbits = QCheck.Gen.array_repeat len QCheck.Gen.bool in
  let writes =
    Bytes.init len (fun i -> if wbits.(i) then '\001' else '\000')
  in
  QCheck.Gen.return
    (Gpusim.Warp.batch_of_arrays ~region ~chunk ~pc ~addrs ~sizes ~warps
       ~weights ~writes)

let g_obj =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map3
        (fun ptr bytes tag -> Pasta.Objmap.Tensor { ptr; bytes; tag })
        g_addr g_nat g_str;
      QCheck.Gen.map3
        (fun ptr bytes managed ->
          Pasta.Objmap.Device_alloc { ptr; bytes; managed })
        g_addr g_nat QCheck.Gen.bool;
      QCheck.Gen.map (fun a -> Pasta.Objmap.Unknown a) g_addr;
    ]

let g_summary =
  let* objects = QCheck.Gen.small_list (QCheck.Gen.pair g_obj g_nat) in
  let* blocks = QCheck.Gen.small_list (QCheck.Gen.pair g_nat g_nat) in
  let* coalesced = QCheck.Gen.small_list (QCheck.Gen.pair g_addr g_nat) in
  let* sampled_records = g_nat in
  let* true_accesses = g_nat in
  let* writes = g_nat in
  let* est_rate = QCheck.Gen.oneofl [ 1.0; 0.5; 0.25; 0.125 ] in
  QCheck.Gen.return
    {
      Pasta.Devagg.objects;
      blocks;
      coalesced;
      sampled_records;
      true_accesses;
      writes;
      est_rate;
    }

let g_profile =
  let* branches = g_nat in
  let* divergent_branches = g_nat in
  let* shared_accesses = g_nat in
  let* bank_conflicts = g_nat in
  let* barrier_stall_us = g_f in
  let* value_min = g_f in
  let* value_max = g_f in
  let* redundant_loads = g_nat in
  QCheck.Gen.return
    {
      Gpusim.Kernel.branches;
      divergent_branches;
      shared_accesses;
      bank_conflicts;
      barrier_stall_us;
      value_min;
      value_max;
      redundant_loads;
    }

let g_direction =
  QCheck.Gen.oneof
    [
      QCheck.Gen.oneofl [ `H2d; `D2h; `D2d ];
      QCheck.Gen.map (fun d -> `P2p d) (QCheck.Gen.int_range 0 7);
    ]

(* One generator per payload constructor, so the round-trip property
   provably covers the whole vocabulary. *)
let payload_gens : (string * Pasta.Event.payload QCheck.Gen.t) list =
  let open Pasta.Event in
  [
    ( "driver_call",
      QCheck.Gen.map2 (fun name phase -> Driver_call { name; phase }) g_str
        g_phase );
    ( "runtime_call",
      QCheck.Gen.map2 (fun name phase -> Runtime_call { name; phase }) g_str
        g_phase );
    ( "kernel_launch_begin",
      QCheck.Gen.map (fun info -> Kernel_launch { info; phase = `Begin }) g_info
    );
    ( "kernel_launch_end",
      let* info = g_info in
      let* duration_us = g_f in
      let* true_accesses = g_nat in
      let* faulted_pages = g_nat in
      QCheck.Gen.return
        (Kernel_launch
           { info; phase = `End { duration_us; true_accesses; faulted_pages } })
    );
    ( "memory_copy",
      QCheck.Gen.map3
        (fun bytes direction stream -> Memory_copy { bytes; direction; stream })
        g_nat g_direction
        (QCheck.Gen.int_range 0 15) );
    ( "memory_set",
      QCheck.Gen.map3
        (fun addr bytes value -> Memory_set { addr; bytes; value })
        g_addr g_nat
        (QCheck.Gen.int_range (-128) 255) );
    ( "memory_alloc",
      QCheck.Gen.map3
        (fun addr bytes managed -> Memory_alloc { addr; bytes; managed })
        g_addr g_nat QCheck.Gen.bool );
    ( "memory_free",
      QCheck.Gen.map2 (fun addr bytes -> Memory_free { addr; bytes }) g_addr
        g_nat );
    ( "synchronization",
      QCheck.Gen.map
        (fun scope -> Synchronization { scope })
        (QCheck.Gen.oneof
           [
             QCheck.Gen.return `Device;
             QCheck.Gen.map (fun s -> `Stream s) (QCheck.Gen.int_range 0 15);
           ]) );
    ( "global_access",
      QCheck.Gen.map2
        (fun kernel access -> Global_access { kernel; access })
        g_info g_access );
    ( "access_batch",
      QCheck.Gen.map2
        (fun kernel batch -> Access_batch { kernel; batch })
        g_info g_batch );
    ( "device_summary",
      QCheck.Gen.map2
        (fun kernel summary -> Device_summary { kernel; summary })
        g_info g_summary );
    ( "shared_access",
      QCheck.Gen.map2
        (fun kernel access -> Shared_access { kernel; access })
        g_info g_access );
    ( "kernel_region",
      let* kernel = g_info in
      let* base = g_addr in
      let* extent = g_nat in
      let* accesses = g_nat in
      let* written = QCheck.Gen.bool in
      QCheck.Gen.return
        (Kernel_region { kernel; region = { base; extent; accesses; written } })
    );
    ( "barrier",
      QCheck.Gen.map2 (fun kernel count -> Barrier { kernel; count }) g_info
        g_nat );
    ( "kernel_profile",
      QCheck.Gen.map2
        (fun kernel profile -> Kernel_profile { kernel; profile })
        g_info g_profile );
    ( "operator",
      QCheck.Gen.map3 (fun name phase seq -> Operator { name; phase; seq })
        g_str g_phase g_nat );
    ( "tensor_alloc",
      let* ptr = g_addr in
      let* bytes = g_nat in
      let* pool_allocated = g_nat in
      let* pool_reserved = g_nat in
      let* tag = g_str in
      QCheck.Gen.return
        (Tensor_alloc { ptr; bytes; pool_allocated; pool_reserved; tag }) );
    ( "tensor_free",
      let* ptr = g_addr in
      let* bytes = g_nat in
      let* pool_allocated = g_nat in
      let* pool_reserved = g_nat in
      QCheck.Gen.return
        (Tensor_free { ptr; bytes; pool_allocated; pool_reserved }) );
    ( "annotation",
      QCheck.Gen.map2 (fun label phase -> Annotation { label; phase }) g_str
        (QCheck.Gen.oneofl [ `Start; `End ]) );
    ( "tool_quarantined",
      QCheck.Gen.map2 (fun tool failures -> Tool_quarantined { tool; failures })
        g_str g_nat );
  ]

let g_payload = QCheck.Gen.oneof (List.map snd payload_gens)

let prop_roundtrip =
  QCheck.Test.make ~name:"ptrace codec: decode (encode p) = p" ~count:500
    (QCheck.make g_payload ~print:(fun p -> Pasta.Event.kind_name p))
    (fun p ->
      Pasta.Ptrace.payload_of_string (Pasta.Ptrace.payload_to_string p) = p)

(* The oneof above samples; this walks every constructor explicitly so a
   broken branch can't hide behind generator luck. *)
let test_roundtrip_each_constructor () =
  let rand = Random.State.make [| 0x9a5a |] in
  List.iter
    (fun (name, gen) ->
      for _ = 1 to 50 do
        let p = QCheck.Gen.generate1 ~rand gen in
        check_bool
          (Printf.sprintf "%s round-trips" name)
          true
          (Pasta.Ptrace.payload_of_string (Pasta.Ptrace.payload_to_string p) = p)
      done)
    payload_gens;
  check_int "every payload constructor has a generator" 21
    (List.length payload_gens)

(* ------------------------------------------------------------------ *)
(* Corruption and truncation                                           *)
(* ------------------------------------------------------------------ *)

let temp_trace () = Filename.temp_file "pasta_test" ".ptrace"

(* A small multi-chunk trace of synthetic ops. *)
let write_sample ?(ops = 200) ?(chunk_bytes = 512) path =
  let w = Pasta.Ptrace.create_writer ~chunk_bytes ~meta:"test" ~device:0 path in
  for i = 0 to ops - 1 do
    Pasta.Ptrace.write_op w ~time_us:(float_of_int i)
      (Pasta.Processor.Sk_event
         (Pasta.Event.Driver_call
            { name = Printf.sprintf "cuLaunchKernel_%d" i; phase = `Enter }))
  done;
  Pasta.Ptrace.close_writer w;
  Pasta.Ptrace.writer_chunks w

let count_ops ~mode path =
  let n = ref 0 in
  let _, stats = Pasta.Ptrace.read_file ~mode path ~f:(fun ~time_us:_ _ -> incr n) in
  (!n, stats)

let test_roundtrip_file () =
  let path = temp_trace () in
  let chunks = write_sample path in
  check_bool "multiple chunks written" true (chunks > 1);
  let n, stats = count_ops ~mode:Pasta.Ptrace.Strict path in
  check_int "all ops decoded" 200 n;
  check_int "all chunks intact" chunks stats.Pasta.Ptrace.r_chunks;
  check_int "nothing skipped" 0 stats.Pasta.Ptrace.r_chunks_skipped;
  Sys.remove path

let corrupt_byte path off =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  let off = if off < 0 then len + off else off in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xFF));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  len

let test_crc_corruption () =
  let path = temp_trace () in
  let chunks = write_sample path in
  let len = corrupt_byte path (-20) (* inside the last chunk's payload *) in
  check_bool "file long enough to corrupt" true (len > 40);
  (match count_ops ~mode:Pasta.Ptrace.Strict path with
  | exception Pasta.Ptrace.Corrupt msg ->
      check_bool "strict names the CRC" true
        (Astring_contains.contains msg "CRC")
  | _ -> Alcotest.fail "strict mode must raise on a CRC mismatch");
  let n, stats = count_ops ~mode:Pasta.Ptrace.Tolerant path in
  check_int "one chunk skipped" 1 stats.Pasta.Ptrace.r_chunks_skipped;
  check_int "other chunks survive" (chunks - 1) stats.Pasta.Ptrace.r_chunks;
  check_bool "a prefix of ops still decodes" true (n > 0 && n < 200);
  Sys.remove path

let test_truncated_file () =
  let path = temp_trace () in
  let (_ : int) = write_sample path in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let keep = len - 37 in
  let b = Bytes.create keep in
  really_input ic b 0 keep;
  close_in ic;
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  (match count_ops ~mode:Pasta.Ptrace.Strict path with
  | exception Pasta.Ptrace.Corrupt _ -> ()
  | _ -> Alcotest.fail "strict mode must raise on truncation");
  let n, stats = count_ops ~mode:Pasta.Ptrace.Tolerant path in
  check_int "truncated tail counts as one skipped chunk" 1
    stats.Pasta.Ptrace.r_chunks_skipped;
  check_bool "intact prefix still decodes" true (n > 0);
  Sys.remove path

let test_truncated_header () =
  let path = temp_trace () in
  let oc = open_out_bin path in
  output_string oc "PTR";
  close_out oc;
  (match Pasta.Ptrace.read_header_of_file path with
  | exception Pasta.Ptrace.Corrupt _ -> ()
  | _ -> Alcotest.fail "three bytes are not a header");
  Sys.remove path

let test_bad_payload_string () =
  match Pasta.Ptrace.payload_of_string "\xff\xff\xff" with
  | exception Pasta.Ptrace.Corrupt _ -> ()
  | _ -> Alcotest.fail "garbage must not decode"

(* ------------------------------------------------------------------ *)
(* Live vs replay                                                      *)
(* ------------------------------------------------------------------ *)

let bert_inference ctx () =
  let m = Dlfw.Bert.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
  Dlfw.Model.inference_iter ctx m

(* One live BERT run under the fine-grained parallel hotness tool with a
   capture riding along; returns the live report and the trace path. *)
let live_run ~domains path =
  Pasta.Config.set "ACCEL_PROF_DOMAINS" (string_of_int domains);
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let hot = Pasta_tools.Hotness.create () in
  let (), result =
    Pasta.Session.run ~sample_cap:256 ~capture:path
      ~tool:(Pasta_tools.Hotness.tool_fine hot)
      device (bert_inference ctx)
  in
  Dlfw.Ctx.destroy ctx;
  Pasta.Config.unset "ACCEL_PROF_DOMAINS";
  result

let replay_report path =
  let hot = Pasta_tools.Hotness.create () in
  let o =
    Pasta.Replay.run ~mode:Pasta.Ptrace.Strict
      ~tool:(Pasta_tools.Hotness.tool_fine hot)
      path
  in
  (o, Format.asprintf "%t" o.Pasta.Replay.report)

let test_live_vs_replay domains () =
  let path = temp_trace () in
  let result = live_run ~domains path in
  let live = Format.asprintf "%t" result.Pasta.Session.report in
  let health = result.Pasta.Session.health in
  check_bool "capture recorded ops" true
    (health.Pasta.Session.events_recorded > 0);
  check_bool "capture wrote bytes" true (health.Pasta.Session.bytes_written > 0);
  check_bool "capture framed chunks" true (health.Pasta.Session.chunks > 0);
  let o, replayed = replay_report path in
  check_int "replay drove every recorded op"
    health.Pasta.Session.events_recorded o.Pasta.Replay.ops_replayed;
  check_bool "replay report digest equals live" true
    (Digest.string live = Digest.string replayed);
  check_bool "replay report byte-identical to live" true
    (String.equal live replayed);
  Sys.remove path

(* Same recording analyzed twice must agree with itself, and a trace must
   diff as identical to its own copy (chunk layout differences aside, two
   live runs in one process legitimately differ — global operator
   sequence numbers keep counting across sessions). *)
let test_replay_deterministic () =
  let a = temp_trace () and b = temp_trace () in
  let (_ : Pasta.Session.result) = live_run ~domains:2 a in
  let _, ra1 = replay_report a in
  let _, ra2 = replay_report a in
  check_bool "replay is repeatable" true (String.equal ra1 ra2);
  (* byte-copy a -> b *)
  let ic = open_in_bin a in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin b in
  output_string oc body;
  close_out oc;
  (match Pasta.Replay.diff a b with
  | Pasta.Replay.Identical n -> check_bool "diff sees ops" true (n > 0)
  | d ->
      Alcotest.failf "a trace diverged from its own copy: %s"
        (Format.asprintf "%a" Pasta.Replay.pp_divergence d));
  let s = Pasta.Replay.stat a in
  check_bool "stat counts ops" true (s.Pasta.Replay.s_ops > 0);
  check_bool "stat has a kind histogram" true (s.Pasta.Replay.s_kinds <> []);
  check_int "stat skipped nothing" 0 s.Pasta.Replay.s_chunks_skipped;
  Sys.remove a;
  Sys.remove b

let test_stat_diff_on_corrupt () =
  let a = temp_trace () and b = temp_trace () in
  let (_ : Pasta.Session.result) = live_run ~domains:1 a in
  let (_ : Pasta.Session.result) = live_run ~domains:1 b in
  (* Corrupt one file mid-payload: tolerant stat keeps going, and diff
     against the pristine twin reports the divergence instead of dying. *)
  let len = corrupt_byte a (-100) in
  check_bool "trace is non-trivial" true (len > 200);
  let s = Pasta.Replay.stat ~mode:Pasta.Ptrace.Tolerant a in
  check_int "corrupt chunk skipped" 1 s.Pasta.Replay.s_chunks_skipped;
  (match Pasta.Replay.diff ~mode:Pasta.Ptrace.Tolerant a b with
  | Pasta.Replay.Identical _ ->
      Alcotest.fail "a corrupted trace cannot equal its pristine twin"
  | Pasta.Replay.Op_mismatch _ | Pasta.Replay.Length_mismatch _ -> ());
  Sys.remove a;
  Sys.remove b

let suite =
  [
    qtest prop_roundtrip;
    Alcotest.test_case "round-trip per constructor" `Quick
      test_roundtrip_each_constructor;
    Alcotest.test_case "multi-chunk file round-trip" `Quick test_roundtrip_file;
    Alcotest.test_case "CRC corruption: strict fails, tolerant skips" `Quick
      test_crc_corruption;
    Alcotest.test_case "truncation: strict fails, tolerant keeps prefix" `Quick
      test_truncated_file;
    Alcotest.test_case "truncated header" `Quick test_truncated_header;
    Alcotest.test_case "garbage payload string" `Quick test_bad_payload_string;
    Alcotest.test_case "live vs replay: byte-identical report (1 domain)"
      `Quick (test_live_vs_replay 1);
    Alcotest.test_case "live vs replay: byte-identical report (4 domains)"
      `Quick (test_live_vs_replay 4);
    Alcotest.test_case "replay determinism + stat/diff round-trip" `Quick
      test_replay_deterministic;
    Alcotest.test_case "stat/diff on a corrupted trace" `Quick
      test_stat_diff_on_corrupt;
  ]
