(* PASTA core tests: events, normalization, registry, processor, range,
   sessions, knobs, call stacks. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let mk_device ?(arch = Gpusim.Arch.a100) () = Gpusim.Device.create arch

let mk_kernel_info ?(grid_id = 1) ?(name = "k") () =
  {
    Pasta.Event.device_id = 0;
    grid_id;
    stream = 0;
    name;
    grid = Gpusim.Dim3.make 1;
    block = Gpusim.Dim3.make 32;
    shared_bytes = 0;
    arg_ptrs = [];
    py_stack = [];
    native_stack = [];
  }

(* ---- Event ---- *)

let test_event_classification () =
  let ki = mk_kernel_info () in
  check_bool "region is fine-grained" true
    (Pasta.Event.is_fine_grained
       (Pasta.Event.Kernel_region
          { kernel = ki; region = { Pasta.Event.base = 0; extent = 1; accesses = 1; written = false } }));
  check_bool "operator is DL" true
    (Pasta.Event.is_dl_framework (Pasta.Event.Operator { name = "x"; phase = `Enter; seq = 1 }));
  check_bool "launch is neither" false
    (Pasta.Event.is_fine_grained (Pasta.Event.Kernel_launch { info = ki; phase = `Begin }));
  check_string "kind name" "memory_alloc"
    (Pasta.Event.kind_name (Pasta.Event.Memory_alloc { addr = 0; bytes = 1; managed = false }))

let test_event_pp_smoke () =
  let ki = mk_kernel_info () in
  let payloads =
    [
      Pasta.Event.Driver_call { name = "Malloc"; phase = `Enter };
      Pasta.Event.Kernel_launch { info = ki; phase = `Begin };
      Pasta.Event.Memory_copy { bytes = 10; direction = `P2p 1; stream = 0 };
      Pasta.Event.Tensor_alloc { ptr = 0; bytes = 4; pool_allocated = 4; pool_reserved = 8; tag = "t" };
      Pasta.Event.Annotation { label = "r"; phase = `Start };
    ]
  in
  List.iter
    (fun payload ->
      let s = Format.asprintf "%a" Pasta.Event.pp { Pasta.Event.device = 0; time_us = 1.0; payload } in
      check_bool "renders" true (String.length s > 0))
    payloads

(* ---- Objmap ---- *)

let test_objmap_resolution_order () =
  let m = Pasta.Objmap.create () in
  Pasta.Objmap.on_alloc m ~addr:1000 ~bytes:1000 ~managed:true;
  Pasta.Objmap.on_tensor_alloc m ~ptr:1200 ~bytes:100 ~tag:"weights";
  (match Pasta.Objmap.resolve m 1250 with
  | Pasta.Objmap.Tensor { ptr = 1200; bytes = 100; tag = "weights" } -> ()
  | o -> Alcotest.failf "expected tensor, got %s" (Pasta.Objmap.obj_label o));
  (match Pasta.Objmap.resolve m 1100 with
  | Pasta.Objmap.Device_alloc { ptr = 1000; managed = true; _ } -> ()
  | _ -> Alcotest.fail "expected device alloc");
  (match Pasta.Objmap.resolve m 5000 with
  | Pasta.Objmap.Unknown 5000 -> ()
  | _ -> Alcotest.fail "expected unknown");
  Pasta.Objmap.on_tensor_free m ~ptr:1200;
  (match Pasta.Objmap.resolve m 1250 with
  | Pasta.Objmap.Device_alloc _ -> ()
  | _ -> Alcotest.fail "tensor freed, falls back to alloc");
  check_int "live after free" 1 (Pasta.Objmap.live_objects m);
  check_int "map bytes" 16 (Pasta.Objmap.map_bytes m)

let test_objmap_boundaries () =
  let m = Pasta.Objmap.create () in
  Pasta.Objmap.on_alloc m ~addr:100 ~bytes:50 ~managed:false;
  check_bool "first byte" true
    (match Pasta.Objmap.resolve m 100 with Pasta.Objmap.Device_alloc _ -> true | _ -> false);
  check_bool "last byte" true
    (match Pasta.Objmap.resolve m 149 with Pasta.Objmap.Device_alloc _ -> true | _ -> false);
  check_bool "one past end" true
    (match Pasta.Objmap.resolve m 150 with Pasta.Objmap.Unknown _ -> true | _ -> false)

(* ---- Normalize ---- *)

let test_canonical_api () =
  check_string "cuda" "Malloc" (Pasta.Normalize.canonical_api "cudaMalloc");
  check_string "hip" "Malloc" (Pasta.Normalize.canonical_api "hipMalloc");
  check_string "cu driver" "LaunchKernel" (Pasta.Normalize.canonical_api "cuLaunchKernel");
  check_string "hip module launch" "LaunchKernel"
    (Pasta.Normalize.canonical_api "hipModuleLaunchKernel");
  check_string "passthrough" "fooBar" (Pasta.Normalize.canonical_api "fooBar")

let test_normalize_rocm_free () =
  let alloc =
    Pasta.Normalize.of_rocprofiler
      (Vendor.Rocprofiler.Memory_allocate { address = 64; size_delta = 128; agent = 0 })
  in
  (match alloc with
  | [ Pasta.Event.Memory_alloc { addr = 64; bytes = 128; _ } ] -> ()
  | _ -> Alcotest.fail "positive delta should be alloc");
  let free =
    Pasta.Normalize.of_rocprofiler
      (Vendor.Rocprofiler.Memory_allocate { address = 64; size_delta = -128; agent = 0 })
  in
  match free with
  | [ Pasta.Event.Memory_free { addr = 64; bytes = 128 } ] -> ()
  | _ -> Alcotest.fail "negative delta should normalize to free"

let test_normalize_directions () =
  check_bool "h2d" true (Pasta.Normalize.direction_of_kind Gpusim.Device.Host_to_device = `H2d);
  check_bool "peer" true (Pasta.Normalize.direction_of_kind (Gpusim.Device.Peer 3) = `P2p 3)

(* ---- Config ---- *)

let test_config_overrides () =
  Pasta.Config.clear_overrides ();
  check_bool "absent" true (Pasta.Config.get "PASTA_TEST_KEY" = None);
  Pasta.Config.set "PASTA_TEST_KEY" "42";
  Alcotest.(check (option int)) "int" (Some 42) (Pasta.Config.get_int "PASTA_TEST_KEY");
  Pasta.Config.set "PASTA_TEST_KEY" "not_a_number";
  Alcotest.(check (option int)) "bad int" None (Pasta.Config.get_int "PASTA_TEST_KEY");
  Pasta.Config.unset "PASTA_TEST_KEY";
  check_bool "unset" true (Pasta.Config.get "PASTA_TEST_KEY" = None);
  Pasta.Config.set "START_GRID_ID" "7";
  Alcotest.(check (option int)) "start grid" (Some 7) (Pasta.Config.start_grid_id ());
  Pasta.Config.clear_overrides ()

(* ---- Range ---- *)

let test_range_grid_bounds () =
  let r = Pasta.Range.create ~start_grid:10 ~end_grid:20 () in
  check_bool "below" false (Pasta.Range.active r ~grid_id:9);
  check_bool "start inclusive" true (Pasta.Range.active r ~grid_id:10);
  check_bool "end inclusive" true (Pasta.Range.active r ~grid_id:20);
  check_bool "above" false (Pasta.Range.active r ~grid_id:21)

let test_range_annotations () =
  let r = Pasta.Range.create () in
  check_bool "no annotations: everything in range" true (Pasta.Range.active r ~grid_id:1);
  Pasta.Range.annot_start r "x";
  Pasta.Range.annot_end r "x";
  (* Once annotations are used the range becomes annotation-driven. *)
  check_bool "outside annotation" false (Pasta.Range.active r ~grid_id:2);
  Pasta.Range.annot_start r "y";
  check_bool "inside annotation" true (Pasta.Range.active r ~grid_id:3);
  check_int "depth" 1 (Pasta.Range.annotation_depth r);
  Pasta.Range.annot_end r "y";
  Alcotest.check_raises "unbalanced end"
    (Invalid_argument "Range.annot_end: pasta.end without pasta.start (z)") (fun () ->
      Pasta.Range.annot_end r "z")

(* ---- Knobs / Callstack ---- *)

let test_knobs_max () =
  let k = Pasta.Knobs.create Pasta.Knobs.max_mem_referenced_kernel in
  Pasta.Knobs.observe k ~kernel:(mk_kernel_info ~name:"a" ()) ~metric:10;
  Pasta.Knobs.observe k ~kernel:(mk_kernel_info ~name:"b" ()) ~metric:5;
  Pasta.Knobs.observe k ~kernel:(mk_kernel_info ~name:"c" ()) ~metric:10;
  (match Pasta.Knobs.best k with
  | Some (ki, 10) -> check_string "ties keep first" "a" ki.Pasta.Event.name
  | _ -> Alcotest.fail "expected max")

let test_callstack_pp () =
  let ki =
    {
      (mk_kernel_info ()) with
      Pasta.Event.py_stack = [ { Gpusim.Hostctx.file = "run.py"; line = 1; symbol = "main" } ];
      native_stack =
        [ { Gpusim.Hostctx.file = "Blas.cpp"; line = 281; symbol = "addmm_out_cuda_impl" } ];
    }
  in
  let out = Format.asprintf "%a" Pasta.Callstack.pp (Pasta.Callstack.of_kernel ki) in
  check_bool "native frame present" true
    (Astring_contains.contains out "addmm_out_cuda_impl");
  check_bool "python frame present" true (Astring_contains.contains out "run.py:1 main");
  check_bool "libc bottom frames present" true
    (Astring_contains.contains out "__libc_start_main_impl");
  check_int "depth" 2 (Pasta.Callstack.depth (Pasta.Callstack.of_kernel ki))

(* ---- Registry ---- *)

let test_registry () =
  Pasta.Registry.register "test_tool_a" (fun () -> Pasta.Tool.default "test_tool_a");
  Pasta.Registry.register "test_tool_b" (fun () -> Pasta.Tool.default "test_tool_b");
  check_bool "find" true (Pasta.Registry.find "test_tool_a" <> None);
  check_bool "missing" true (Pasta.Registry.find "no_such_tool" = None);
  check_bool "names sorted" true
    (let names = Pasta.Registry.names () in
     List.mem "test_tool_a" names && names = List.sort compare names);
  Pasta.Config.set "PASTA_TOOL" "test_tool_b";
  (match Pasta.Registry.resolve_from_config () with
  | Some t -> check_string "resolved from config" "test_tool_b" t.Pasta.Tool.name
  | None -> Alcotest.fail "expected tool");
  Pasta.Config.clear_overrides ()

(* ---- Processor ---- *)

let test_processor_registry_updates_out_of_range () =
  let p = Pasta.Processor.create ~range:(Pasta.Range.create ~start_grid:100 ()) ~device:0 () in
  let dispatched = ref 0 in
  Pasta.Processor.set_tool p
    { (Pasta.Tool.default "t") with Pasta.Tool.on_event = (fun _ -> incr dispatched) };
  Pasta.Processor.submit p ~time_us:0.0
    (Pasta.Event.Memory_alloc { addr = 500; bytes = 100; managed = false });
  (* The allocation was out of no range (non-kernel events use annotations
     only), so it dispatches; the registry must be updated either way. *)
  check_bool "registry updated" true
    (match Pasta.Objmap.resolve (Pasta.Processor.objmap p) 550 with
    | Pasta.Objmap.Device_alloc _ -> true
    | _ -> false);
  (* Kernel events below the grid bound must not dispatch. *)
  Pasta.Processor.submit p ~time_us:0.0
    (Pasta.Event.Kernel_launch { info = mk_kernel_info ~grid_id:5 (); phase = `Begin });
  check_int "kernel filtered" 1 !dispatched;
  Pasta.Processor.submit p ~time_us:0.0
    (Pasta.Event.Kernel_launch { info = mk_kernel_info ~grid_id:150 (); phase = `Begin });
  check_int "kernel in range dispatched" 2 !dispatched;
  let st = Pasta.Processor.stats p in
  check_int "seen counts everything" 3 st.Pasta.Processor.events_seen;
  check_int "kernels counted regardless of range" 2 st.Pasta.Processor.kernels_seen

let test_processor_summaries () =
  let p = Pasta.Processor.create ~range:(Pasta.Range.create ()) ~device:0 () in
  let summaries = ref [] in
  let regions = ref 0 in
  Pasta.Processor.set_tool p
    {
      (Pasta.Tool.default "t") with
      Pasta.Tool.on_mem_summary = (fun _ s -> summaries := s :: !summaries);
      on_event =
        (fun ev ->
          match ev.Pasta.Event.payload with
          | Pasta.Event.Kernel_region _ -> incr regions
          | _ -> ());
    };
  Pasta.Processor.submit p ~time_us:0.0
    (Pasta.Event.Tensor_alloc
       { ptr = 1000; bytes = 512; pool_allocated = 512; pool_reserved = 512; tag = "w" });
  let ki = mk_kernel_info ~grid_id:1 () in
  (* Two regions inside the same tensor must aggregate to one object. *)
  Pasta.Processor.submit_region p ki ~base:1000 ~extent:100 ~accesses:10 ~written:false;
  Pasta.Processor.submit_region p ki ~base:1200 ~extent:100 ~accesses:5 ~written:true;
  Pasta.Processor.flush_kernel_summary p ~time_us:1.0 ki;
  check_int "region events" 2 !regions;
  (match !summaries with
  | [ [ (Pasta.Objmap.Tensor { ptr = 1000; _ }, 15) ] ] -> ()
  | _ -> Alcotest.fail "expected one aggregated object with 15 accesses");
  (* Flushing again without regions is a no-op. *)
  Pasta.Processor.flush_kernel_summary p ~time_us:2.0 ki;
  check_int "no double flush" 1 (List.length !summaries)

let test_processor_access_dispatch () =
  let p = Pasta.Processor.create ~range:(Pasta.Range.create ()) ~device:0 () in
  let accesses = ref 0 in
  Pasta.Processor.set_tool p
    { (Pasta.Tool.default "t") with Pasta.Tool.on_access = (fun _ _ -> incr accesses) };
  let access = { Pasta.Event.addr = 0; size = 4; write = false; pc = 0; warp = 0; weight = 1 } in
  (* Records sit in the bounded buffer until a kernel-end or explicit flush. *)
  Pasta.Processor.submit_access p ~time_us:0.0 (mk_kernel_info ()) access;
  check_int "record buffered, not yet dispatched" 0 !accesses;
  Pasta.Processor.flush_records p;
  check_int "access dispatched on flush" 1 !accesses;
  Pasta.Processor.flush_records p;
  check_int "flush is idempotent" 1 !accesses;
  check_int "nothing dropped" 0 (Pasta.Processor.stats p).Pasta.Processor.records_dropped

(* ---- Session end-to-end ---- *)

let test_session_end_to_end () =
  let device = mk_device () in
  let ctx = Dlfw.Ctx.create device in
  let kernel_ends = ref 0 and tensor_allocs = ref 0 and ops = ref 0 in
  let tool =
    {
      (Pasta.Tool.default "e2e") with
      Pasta.Tool.on_kernel_end = (fun _ _ -> incr kernel_ends);
      on_tensor = (function `Alloc _ -> incr tensor_allocs | `Free _ -> ());
      on_operator = (fun _ phase _ -> if phase = `Enter then incr ops);
    }
  in
  let (), result =
    Pasta.Session.run ~tool device (fun () ->
        let x = Dlfw.Ops.new_tensor ctx [ 8; 8 ] Dlfw.Dtype.F32 in
        let y = Dlfw.Ops.relu ctx x in
        Dlfw.Tensor.release x;
        Dlfw.Tensor.release y)
  in
  check_int "kernel seen" 1 !kernel_ends;
  check_int "tensors seen" 2 !tensor_allocs;
  check_int "operators seen" 1 !ops;
  check_int "session kernels" 1 result.Pasta.Session.kernels;
  check_bool "events flowed" true (result.Pasta.Session.events_seen > 5);
  Dlfw.Ctx.destroy ctx

let test_session_restores_sample_cap () =
  let device = mk_device () in
  Gpusim.Device.set_sample_cap device 99;
  let s = Pasta.Session.attach ~sample_cap:7 ~tool:(Pasta.Tool.default "t") device in
  check_int "cap applied" 7 (Gpusim.Device.sample_cap device);
  ignore (Pasta.Session.detach s);
  check_int "cap restored" 99 (Gpusim.Device.sample_cap device)

let test_session_annotations () =
  let device = mk_device () in
  let ctx = Dlfw.Ctx.create device in
  let in_range = ref 0 in
  let tool =
    { (Pasta.Tool.default "t") with Pasta.Tool.on_kernel_end = (fun _ _ -> incr in_range) }
  in
  let launch () =
    let x = Dlfw.Ops.new_tensor ctx [ 4 ] Dlfw.Dtype.F32 in
    let y = Dlfw.Ops.relu ctx x in
    Dlfw.Tensor.release x;
    Dlfw.Tensor.release y
  in
  let (), _ =
    Pasta.Session.run ~tool device (fun () ->
        launch ();
        Pasta.Session.start ();
        launch ();
        Pasta.Session.end_ ();
        launch ())
  in
  (* Pre-annotation work is in range (the range only becomes
     annotation-driven at the first pasta.start); everything after the
     matching pasta.end is filtered. *)
  check_int "pre-annotation + annotated kernels dispatched" 2 !in_range;
  (* With annotations_only the range starts closed. *)
  in_range := 0;
  let range = Pasta.Range.create ~annotations_only:true () in
  let (), _ =
    Pasta.Session.run ~range ~tool device (fun () ->
        launch ();
        Pasta.Session.start ();
        launch ();
        Pasta.Session.end_ ();
        launch ())
  in
  check_int "annotations_only: only the annotated kernel" 1 !in_range;
  Dlfw.Ctx.destroy ctx

let test_session_backend_defaults () =
  let nv = mk_device () in
  check_bool "nvidia defaults to sanitizer" true
    (Pasta.Backend.default_kind_for nv = Pasta.Backend.Sanitizer);
  let amd = mk_device ~arch:Gpusim.Arch.mi300x () in
  check_bool "amd defaults to rocprofiler" true
    (Pasta.Backend.default_kind_for amd = Pasta.Backend.Rocprofiler);
  (* A Cpu_nvbit tool forces the NVBit backend without an explicit choice. *)
  let tool = Pasta.Tool.default ~fine_grained:Pasta.Tool.Cpu_nvbit "t" in
  let s = Pasta.Session.attach ~tool nv in
  ignore (Pasta.Session.detach s)

let test_backend_invalid_combinations () =
  let nv = mk_device () in
  let proc = Pasta.Processor.create ~device:0 () in
  let b = Pasta.Backend.attach Pasta.Backend.Nvbit nv ~processor:proc in
  Alcotest.check_raises "nvbit cannot run GPU-resident analysis"
    (Invalid_argument "Backend: NVBit supports only CPU-side trace analysis") (fun () ->
      Pasta.Backend.enable_fine_grained b Pasta.Tool.Gpu_accelerated);
  Pasta.Backend.detach b;
  Alcotest.check_raises "rocprofiler on nvidia"
    (Invalid_argument "Rocprofiler.attach: not an AMD device") (fun () ->
      ignore (Pasta.Backend.attach Pasta.Backend.Rocprofiler nv ~processor:proc))

let test_dl_hooks_device_filter () =
  let d0 = Gpusim.Device.create ~id:0 Gpusim.Arch.a100 in
  let d1 = Gpusim.Device.create ~id:1 Gpusim.Arch.a100 in
  let ctx1 = Dlfw.Ctx.create d1 in
  let seen = ref 0 in
  let tool = { (Pasta.Tool.default "t") with Pasta.Tool.on_tensor = (fun _ -> incr seen) } in
  let s = Pasta.Session.attach ~tool d0 in
  (* Tensor traffic on device 1 must not reach device 0's session. *)
  let t = Dlfw.Ops.new_tensor ctx1 [ 4 ] Dlfw.Dtype.F32 in
  Dlfw.Tensor.release t;
  ignore (Pasta.Session.detach s);
  check_int "foreign-device tensors filtered" 0 !seen;
  Dlfw.Ctx.destroy ctx1

let suite =
  [
    ("event classification", `Quick, test_event_classification);
    ("event pp smoke", `Quick, test_event_pp_smoke);
    ("objmap resolution order", `Quick, test_objmap_resolution_order);
    ("objmap boundaries", `Quick, test_objmap_boundaries);
    ("canonical api", `Quick, test_canonical_api);
    ("normalize rocm free", `Quick, test_normalize_rocm_free);
    ("normalize directions", `Quick, test_normalize_directions);
    ("config overrides", `Quick, test_config_overrides);
    ("range grid bounds", `Quick, test_range_grid_bounds);
    ("range annotations", `Quick, test_range_annotations);
    ("knobs max", `Quick, test_knobs_max);
    ("callstack pp", `Quick, test_callstack_pp);
    ("registry", `Quick, test_registry);
    ("processor registry out of range", `Quick, test_processor_registry_updates_out_of_range);
    ("processor summaries", `Quick, test_processor_summaries);
    ("processor access dispatch", `Quick, test_processor_access_dispatch);
    ("session end to end", `Quick, test_session_end_to_end);
    ("session restores sample cap", `Quick, test_session_restores_sample_cap);
    ("session annotations", `Quick, test_session_annotations);
    ("session backend defaults", `Quick, test_session_backend_defaults);
    ("backend invalid combinations", `Quick, test_backend_invalid_combinations);
    ("dl hooks device filter", `Quick, test_dl_hooks_device_filter);
  ]
