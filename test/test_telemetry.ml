(* Self-telemetry: span-stack invariants under arbitrary begin/end
   sequences, exporter well-formedness (Chrome trace JSON, Prometheus
   text exposition), exact self-time attribution (rows sum to the window),
   deterministic metric counts across live vs replay, and quarantine-time
   attribution for a raising tool. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let qtest = QCheck_alcotest.to_alcotest

module T = Pasta.Telemetry

(* Drive the level through the config knob, not {!T.set_level}: sessions
   call [refresh_level] on attach, which re-reads the knob and would
   silently undo a bare set_level. *)
let with_level name f =
  Pasta.Config.set "ACCEL_PROF_TELEMETRY" name;
  T.refresh_level ();
  T.reset ();
  Fun.protect
    ~finally:(fun () ->
      Pasta.Config.unset "ACCEL_PROF_TELEMETRY";
      T.refresh_level ())
    f

(* ------------------------------------------------------------------ *)
(* Span-stack discipline (qcheck)                                      *)
(* ------------------------------------------------------------------ *)

let cats = [| T.Handler; T.Dispatch; T.Ring; T.Devagg |]

type op = Begin of int | End of int

let g_op =
  QCheck.Gen.(
    map2
      (fun b i -> if b then Begin i else End i)
      bool
      (int_range 0 (Array.length cats - 1)))

let g_ops = QCheck.Gen.(list_size (int_range 0 200) g_op)

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Begin i -> Printf.sprintf "B%d" i
         | End i -> Printf.sprintf "E%d" i)
       ops)

(* Reference model of the stack discipline: a bounded stack of category
   indices with a skip counter past the capacity and a mismatch counter
   for unbalanced or mislabeled ends.  Mirrors telemetry.ml exactly. *)
let model_apply ops =
  let cap = 64 in
  let stack = ref [] and depth = ref 0 and skipped = ref 0 in
  let mismatches = ref 0 in
  List.iter
    (function
      | Begin i ->
          if !skipped > 0 || !depth >= cap then incr skipped
          else begin
            stack := i :: !stack;
            incr depth
          end
      | End i ->
          if !skipped > 0 then decr skipped
          else if !depth = 0 then incr mismatches
          else begin
            let top = List.hd !stack in
            stack := List.tl !stack;
            decr depth;
            if top <> i then incr mismatches
          end)
    ops;
  (!depth + !skipped, !mismatches)

let prop_span_stack =
  QCheck.Test.make ~count:300
    ~name:"span stack: depth and mismatches match the reference model"
    (QCheck.make ~print:print_ops g_ops)
    (fun ops ->
      with_level "full" (fun () ->
          List.iter
            (function
              | Begin i -> T.begin_span cats.(i) "prop"
              | End i -> T.end_span cats.(i))
            ops;
          let depth, mismatches = model_apply ops in
          T.depth () = depth && T.mismatches () = mismatches))

let prop_balanced_no_mismatch =
  QCheck.Test.make ~count:200
    ~name:"well-nested sequences leave an empty stack and no mismatches"
    QCheck.(make ~print:Print.(list int) Gen.(list_size (int_range 0 40) (int_range 0 3)))
    (fun is ->
      with_level "full" (fun () ->
          (* Open in order, close in reverse: always well-nested. *)
          List.iter (fun i -> T.begin_span cats.(i) "nest") is;
          List.iter (fun i -> T.end_span cats.(i)) (List.rev is);
          T.depth () = 0 && T.mismatches () = 0))

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser (validation only)                               *)
(* ------------------------------------------------------------------ *)

exception Bad_json of string

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    String.iter expect lit;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/') as c) ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | Some 'n' | Some 't' | Some 'r' | Some 'b' | Some 'f' ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          J_obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          J_arr (elems [])
        end
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some ('-' | '0' .. '9') -> J_num (parse_number ())
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Workload drivers                                                    *)
(* ------------------------------------------------------------------ *)

let bert_inference ctx () =
  let m = Dlfw.Bert.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
  Dlfw.Model.inference_iter ctx m

(* One live BERT run under fine-grained parallel hotness, optionally
   recording a trace; telemetry state is NOT reset here so callers
   control the window. *)
let live_run ?capture ~domains () =
  Pasta.Config.set "ACCEL_PROF_DOMAINS" (string_of_int domains);
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let hot = Pasta_tools.Hotness.create () in
  let (), result =
    Pasta.Session.run ~sample_cap:256 ?capture
      ~tool:(Pasta_tools.Hotness.tool_fine hot)
      device (bert_inference ctx)
  in
  Dlfw.Ctx.destroy ctx;
  Pasta.Config.unset "ACCEL_PROF_DOMAINS";
  result

let temp_file ext = Filename.temp_file "pasta_telemetry" ext

(* ------------------------------------------------------------------ *)
(* Attribution                                                         *)
(* ------------------------------------------------------------------ *)

let test_rows_sum_to_total () =
  with_level "basic" (fun () ->
      let (_ : Pasta.Session.result) = live_run ~domains:1 () in
      let a = T.attribution () in
      let sum =
        List.fold_left (fun acc r -> acc +. r.T.row_self_us) 0.0 a.T.at_rows
      in
      check_bool "window is non-trivial" true (a.T.at_total_us > 0.0);
      let err = abs_float (sum -. a.T.at_total_us) /. a.T.at_total_us in
      if err > 0.01 then
        Alcotest.failf "rows sum %.1fus vs total %.1fus (%.3f%% off)" sum
          a.T.at_total_us (100.0 *. err);
      check_bool "has a handler row" true
        (List.exists (fun r -> r.T.row_label = "handler (vendor adapt)") a.T.at_rows);
      check_bool "has a processor row" true
        (List.exists
           (fun r -> r.T.row_label = "processor (dispatch)" && r.T.row_count > 0)
           a.T.at_rows);
      check_bool "has the tool row" true
        (List.exists
           (fun r -> r.T.row_label = "tool:hotness_fine" && r.T.row_count > 0)
           a.T.at_rows);
      check_int "stack drained" 0 (T.depth ());
      check_int "no mismatches" 0 (T.mismatches ()))

let test_off_is_inert () =
  with_level "off" (fun () ->
      let (_ : Pasta.Session.result) = live_run ~domains:1 () in
      let a = T.attribution () in
      List.iter
        (fun r ->
          if r.T.row_label <> "simulate + workload" then
            Alcotest.failf "level off attributed %s" r.T.row_label)
        a.T.at_rows;
      check_int "no spans recorded" 0 (T.spans_recorded ()))

(* A tool whose kernel-begin callback burns visible wall time and then
   raises: the guard must still charge that time to the tool, and the
   span stack must stay balanced through the exception path. *)
let test_quarantined_tool_attributed () =
  with_level "basic" (fun () ->
      Pasta.Config.set "ACCEL_PROF_GUARD_THRESHOLD" "2";
      let spin_us = 200.0 in
      let spin () =
        let t0 = Unix.gettimeofday () in
        while (Unix.gettimeofday () -. t0) *. 1e6 < spin_us do
          ()
        done
      in
      let crashy =
        {
          (Pasta.Tool.default "crashy") with
          Pasta.Tool.on_kernel_begin =
            (fun _ ->
              spin ();
              failwith "boom");
        }
      in
      let proc = Pasta.Processor.create ~device:0 () in
      Pasta.Processor.set_tool proc crashy;
      let info grid_id =
        {
          Pasta.Event.device_id = 0;
          grid_id;
          stream = 0;
          name = "k";
          grid = Gpusim.Dim3.make 1;
          block = Gpusim.Dim3.make 32;
          shared_bytes = 0;
          arg_ptrs = [];
          py_stack = [];
          native_stack = [];
        }
      in
      for g = 1 to 4 do
        Pasta.Processor.submit proc
          ~time_us:(float_of_int g)
          (Pasta.Event.Kernel_launch { info = info g; phase = `Begin })
      done;
      let st = Pasta.Processor.stats proc in
      check_bool "tool failed at least twice" true
        (st.Pasta.Processor.tool_failures >= 2);
      check_string "tool is quarantined" "quarantined"
        (match Pasta.Processor.guard proc with
        | Some g -> Pasta.Guard.state_name (Pasta.Guard.state g)
        | None -> "<none>");
      let a = T.attribution () in
      let tool_row =
        List.find_opt (fun r -> r.T.row_label = "tool:crashy") a.T.at_rows
      in
      (match tool_row with
      | None -> Alcotest.fail "no tool:crashy attribution row"
      | Some r ->
          check_bool "raising callbacks charged to the tool" true
            (r.T.row_self_us >= 2.0 *. spin_us *. 0.5);
          check_bool "calls counted" true (r.T.row_count >= 2));
      check_int "stack balanced through exceptions" 0 (T.depth ());
      check_int "no span mismatches" 0 (T.mismatches ());
      Pasta.Config.unset "ACCEL_PROF_GUARD_THRESHOLD")

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)
(* ------------------------------------------------------------------ *)

let test_chrome_trace_parses () =
  with_level "full" (fun () ->
      let (_ : Pasta.Session.result) = live_run ~domains:1 () in
      check_bool "spans were recorded" true (T.spans_recorded () > 0);
      let path = temp_file ".json" in
      T.write_chrome_trace path;
      let j = parse_json (read_file path) in
      Sys.remove path;
      match j with
      | J_obj fields -> (
          match List.assoc_opt "traceEvents" fields with
          | Some (J_arr evs) ->
              check_bool "trace has events" true (List.length evs > 0);
              let phases = Hashtbl.create 4 in
              List.iter
                (fun ev ->
                  match ev with
                  | J_obj f ->
                      (match List.assoc_opt "ph" f with
                      | Some (J_str ph) -> Hashtbl.replace phases ph ()
                      | _ -> Alcotest.fail "event without ph");
                      (match List.assoc_opt "name" f with
                      | Some (J_str _) -> ()
                      | _ -> Alcotest.fail "event without name");
                      (* Duration events must carry both clock domains. *)
                      if List.assoc_opt "ph" f = Some (J_str "X") then begin
                        (match List.assoc_opt "dur" f with
                        | Some (J_num d) ->
                            check_bool "dur >= 0" true (d >= 0.0)
                        | _ -> Alcotest.fail "X event without dur");
                        match List.assoc_opt "args" f with
                        | Some (J_obj args) ->
                            check_bool "sim_t0_us arg" true
                              (List.mem_assoc "sim_t0_us" args);
                            check_bool "sim_t1_us arg" true
                              (List.mem_assoc "sim_t1_us" args)
                        | _ -> Alcotest.fail "X event without args"
                      end
                  | _ -> Alcotest.fail "non-object event")
                evs;
              check_bool "has X span events" true (Hashtbl.mem phases "X");
              check_bool "has M metadata events" true (Hashtbl.mem phases "M")
          | _ -> Alcotest.fail "no traceEvents array")
      | _ -> Alcotest.fail "top level is not an object")

let test_merged_trace_parses () =
  with_level "full" (fun () ->
      Pasta.Config.set "ACCEL_PROF_DOMAINS" "1";
      let device = Gpusim.Device.create Gpusim.Arch.a100 in
      let ctx = Dlfw.Ctx.create device in
      let tx = Pasta.Trace_export.create () in
      let (), (_ : Pasta.Session.result) =
        Pasta.Session.run
          ~tool:(Pasta.Trace_export.tool tx)
          device
          (fun () ->
            let m = Dlfw.Bert.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
            Dlfw.Model.inference_iter ctx m)
      in
      Dlfw.Ctx.destroy ctx;
      Pasta.Config.unset "ACCEL_PROF_DOMAINS";
      let merged = Pasta.Trace_export.to_json ~extra:(T.chrome_events ()) tx in
      match parse_json merged with
      | J_obj fields -> (
          match List.assoc_opt "traceEvents" fields with
          | Some (J_arr evs) ->
              (* Both process groups must be present: device pids from the
                 workload exporter, pid 1000 from telemetry. *)
              let pids = Hashtbl.create 4 in
              List.iter
                (function
                  | J_obj f -> (
                      match List.assoc_opt "pid" f with
                      | Some (J_num p) -> Hashtbl.replace pids (int_of_float p) ()
                      | _ -> ())
                  | _ -> ())
                evs;
              check_bool "telemetry pid present" true (Hashtbl.mem pids 1000);
              check_bool "a workload pid present" true
                (Hashtbl.fold (fun p _ acc -> acc || p <> 1000) pids false)
          | _ -> Alcotest.fail "no traceEvents array")
      | _ -> Alcotest.fail "merged trace is not an object")

(* ------------------------------------------------------------------ *)
(* Prometheus exposition grammar                                       *)
(* ------------------------------------------------------------------ *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let check_metric_name line what s =
  if s = "" || not (is_name_start s.[0]) || not (String.for_all is_name_char s)
  then Alcotest.failf "bad %s %S in line %S" what s line

(* One sample line: name{label="value",...} number *)
let check_sample_line line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do
    incr i
  done;
  check_metric_name line "metric name" (String.sub line 0 !i);
  if !i < n && line.[!i] = '{' then begin
    incr i;
    let rec labels () =
      let ls = !i in
      while !i < n && is_name_char line.[!i] do
        incr i
      done;
      check_metric_name line "label name" (String.sub line ls (!i - ls));
      if !i >= n || line.[!i] <> '=' then
        Alcotest.failf "missing = in labels of %S" line;
      incr i;
      if !i >= n || line.[!i] <> '"' then
        Alcotest.failf "unquoted label value in %S" line;
      incr i;
      let fin = ref false in
      while not !fin do
        if !i >= n then Alcotest.failf "unterminated label value in %S" line;
        (match line.[!i] with
        | '\\' -> incr i (* skip the escaped char below *)
        | '"' -> fin := true
        | _ -> ());
        incr i
      done;
      if !i < n && line.[!i] = ',' then begin
        incr i;
        labels ()
      end
      else if !i < n && line.[!i] = '}' then incr i
      else Alcotest.failf "expected , or } in %S" line
    in
    labels ()
  end;
  if !i >= n || line.[!i] <> ' ' then
    Alcotest.failf "expected space before value in %S" line;
  let v = String.sub line (!i + 1) (n - !i - 1) in
  match float_of_string_opt v with
  | Some _ -> ()
  | None -> Alcotest.failf "non-numeric sample value %S in %S" v line

let base_name s =
  let strip suf s =
    if String.length s > String.length suf
       && String.sub s (String.length s - String.length suf) (String.length suf)
          = suf
    then String.sub s 0 (String.length s - String.length suf)
    else s
  in
  strip "_sum" (strip "_count" s)

let test_prometheus_grammar () =
  with_level "full" (fun () ->
      let result = live_run ~domains:2 () in
      let body = T.prometheus ~extra:[ result.Pasta.Session.metrics ] () in
      check_bool "exposition is non-empty" true (String.length body > 0);
      let typed = Hashtbl.create 32 in
      let lines = String.split_on_char '\n' body in
      List.iter
        (fun line ->
          if line = "" then ()
          else if String.length line > 7 && String.sub line 0 7 = "# HELP " then ()
          else if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
            let rest = String.sub line 7 (String.length line - 7) in
            match String.split_on_char ' ' rest with
            | [ name; kind ] ->
                check_metric_name line "typed name" name;
                if not (List.mem kind [ "counter"; "gauge"; "summary" ]) then
                  Alcotest.failf "unknown TYPE %S" kind;
                if Hashtbl.mem typed name then
                  Alcotest.failf "duplicate TYPE for %s" name;
                Hashtbl.add typed name ()
            | _ -> Alcotest.failf "malformed TYPE line %S" line
          end
          else if String.length line > 0 && line.[0] = '#' then
            Alcotest.failf "unknown comment line %S" line
          else begin
            check_sample_line line;
            (* every sample must appear under a preceding TYPE block *)
            let name =
              let i = ref 0 in
              while
                !i < String.length line
                && is_name_char line.[!i]
              do
                incr i
              done;
              String.sub line 0 !i
            in
            if not (Hashtbl.mem typed name || Hashtbl.mem typed (base_name name))
            then Alcotest.failf "sample %s before its TYPE" name
          end)
        lines;
      (* the pipeline counters made it into the merged exposition *)
      check_bool "pipeline counter exported" true
        (Hashtbl.mem typed "pasta_events_seen");
      check_bool "telemetry metric exported" true
        (Hashtbl.mem typed "pasta_tool_callback_us"))

(* ------------------------------------------------------------------ *)
(* Live vs replay: metric counts are deterministic                     *)
(* ------------------------------------------------------------------ *)

(* The deterministic subset: counters driven purely by the op stream.
   Capture/replay accounting legitimately differs between the two runs
   and is excluded. *)
let curated =
  [
    "pasta_events_seen";
    "pasta_events_dispatched";
    "pasta_events_suppressed";
    "pasta_kernels_seen";
    "pasta_summaries_flushed";
    "pasta_tool_failures";
    "pasta_records_dropped";
    "pasta_buffer_stalls";
    "pasta_accesses_filtered";
    "pasta_batches_delivered";
  ]

(* Pipeline counters now carry a ("device", id) label; summing across
   label sets keeps the comparison independent of the device ids the two
   runs happened to draw. *)
let snapshot reg =
  let samples = Pasta_util.Metric.counter_samples reg in
  List.map
    (fun name ->
      ( name,
        List.fold_left
          (fun acc (n, _, v) -> if n = name then acc + v else acc)
          0 samples ))
    curated

let test_replay_metric_counts domains () =
  with_level "basic" (fun () ->
      let path = temp_file ".ptrace" in
      let result = live_run ~capture:path ~domains () in
      let live = snapshot result.Pasta.Session.metrics in
      let hot = Pasta_tools.Hotness.create () in
      let o =
        Pasta.Replay.run ~mode:Pasta.Ptrace.Strict
          ~tool:(Pasta_tools.Hotness.tool_fine hot)
          path
      in
      Sys.remove path;
      let replayed = snapshot (Pasta.Processor.metrics o.Pasta.Replay.processor) in
      List.iter2
        (fun (name, lv) (_, rv) ->
          check_int (Printf.sprintf "%s live = replay (%d domains)" name domains)
            lv rv)
        live replayed;
      check_bool "events actually flowed" true
        (List.assoc "pasta_events_seen" live > 0))

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "attribution rows sum to the window" `Quick
      test_rows_sum_to_total;
    Alcotest.test_case "level off attributes nothing" `Quick test_off_is_inert;
    Alcotest.test_case "quarantined tool time is attributed" `Quick
      test_quarantined_tool_attributed;
    qtest prop_span_stack;
    qtest prop_balanced_no_mismatch;
    Alcotest.test_case "chrome trace parses as JSON" `Quick
      test_chrome_trace_parses;
    Alcotest.test_case "merged workload+telemetry trace parses" `Quick
      test_merged_trace_parses;
    Alcotest.test_case "prometheus exposition grammar" `Quick
      test_prometheus_grammar;
    Alcotest.test_case "live vs replay metric counts, 1 domain" `Quick
      (test_replay_metric_counts 1);
    Alcotest.test_case "live vs replay metric counts, 4 domains" `Quick
      (test_replay_metric_counts 4);
  ]
