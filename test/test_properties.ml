(* Second property-test batch: cross-checking modules against naive
   reference implementations on random inputs. *)

let qtest = QCheck_alcotest.to_alcotest

let prop_histogram_merge_commutative =
  QCheck.Test.make ~name:"histogram merge is commutative" ~count:200
    QCheck.(pair (small_list (pair (string_of_size (Gen.int_range 1 4)) (int_range 1 10)))
              (small_list (pair (string_of_size (Gen.int_range 1 4)) (int_range 1 10))))
    (fun (xs, ys) ->
      let mk items =
        let h = Pasta_util.Histogram.create () in
        List.iter (fun (k, n) -> Pasta_util.Histogram.add h ~count:n k) items;
        h
      in
      let ab = Pasta_util.Histogram.merge (mk xs) (mk ys) in
      let ba = Pasta_util.Histogram.merge (mk ys) (mk xs) in
      Pasta_util.Histogram.to_sorted ab = Pasta_util.Histogram.to_sorted ba)

let prop_timeline_bucket_values_from_samples =
  QCheck.Test.make ~name:"bucketized values are recorded values" ~count:200
    QCheck.(small_list (float_range 0.0 100.0))
    (fun values ->
      QCheck.assume (values <> []);
      let tl = Pasta_util.Timeline.create () in
      List.iteri (fun i v -> Pasta_util.Timeline.record tl ~time:(float_of_int i) v) values;
      let buckets = Pasta_util.Timeline.bucketize tl ~buckets:7 in
      Array.for_all (fun b -> List.exists (fun v -> v = b) values) buckets)

let prop_canonical_api_idempotent =
  QCheck.Test.make ~name:"canonical_api is idempotent" ~count:200
    QCheck.(string_of_size (Gen.int_range 0 20))
    (fun s ->
      let once = Pasta.Normalize.canonical_api s in
      Pasta.Normalize.canonical_api once = once
      || (* stripping can expose another prefix once (e.g. "cudacuMalloc");
            a second pass must then be the fixed point *)
      Pasta.Normalize.canonical_api (Pasta.Normalize.canonical_api once)
      = Pasta.Normalize.canonical_api once)

let prop_devmem_find_matches_scan =
  QCheck.Test.make ~name:"find_containing agrees with a linear scan" ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 1 20) (int_range 1 2048)) (int_range 0 65535))
    (fun (sizes, probe_off) ->
      let m = Gpusim.Device_mem.create ~base:0 ~capacity:(1 lsl 16) () in
      let live = ref [] in
      List.iter
        (fun sz ->
          match Gpusim.Device_mem.alloc m sz with
          | a -> live := a :: !live
          | exception Gpusim.Device_mem.Out_of_memory _ -> ())
        sizes;
      let addr = probe_off in
      let expected =
        List.find_opt
          (fun (a : Gpusim.Device_mem.alloc) ->
            addr >= a.Gpusim.Device_mem.base
            && addr < a.Gpusim.Device_mem.base + a.Gpusim.Device_mem.bytes)
          !live
      in
      let got = Gpusim.Device_mem.find_containing m addr in
      match (expected, got) with
      | None, None -> true
      | Some a, Some b -> a.Gpusim.Device_mem.base = b.Gpusim.Device_mem.base
      | _ -> false)

let prop_uvm_touch_residency =
  QCheck.Test.make ~name:"touched pages are resident when capacity suffices" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 10) (pair (int_range 0 31) (int_range 1 8)))
    (fun touches ->
      let page = Gpusim.Arch.a100.Gpusim.Arch.uvm_page_bytes in
      let clock = Gpusim.Clock.create () in
      let u = Gpusim.Uvm.create Gpusim.Arch.a100 clock ~capacity:(64 * page) in
      Gpusim.Uvm.register_range u ~base:0 ~bytes:(32 * page);
      let expected = Hashtbl.create 32 in
      let f = ref 0 in
      List.iter
        (fun (start, len) ->
          let lo = min start 31 in
          let hi = min 31 (lo + len - 1) in
          for p = lo to hi do
            Hashtbl.replace expected p ()
          done;
          Gpusim.Uvm.touch u ~base:(lo * page)
            ~bytes:((hi - lo + 1) * page)
            ~faulted_pages:f)
        touches;
      Gpusim.Uvm.check_invariants u;
      Gpusim.Uvm.resident_pages u = Hashtbl.length expected
      && !f = Hashtbl.length expected)

let prop_objmap_tensor_shadows_alloc =
  QCheck.Test.make ~name:"objmap always prefers live tensors over allocations" ~count:200
    QCheck.(pair (int_range 0 1000) (int_range 1 500))
    (fun (t_off, t_len) ->
      let m = Pasta.Objmap.create () in
      Pasta.Objmap.on_alloc m ~addr:0 ~bytes:2000 ~managed:false;
      Pasta.Objmap.on_tensor_alloc m ~ptr:t_off ~bytes:t_len ~tag:"t";
      let inside = t_off + (t_len / 2) in
      let is_tensor =
        match Pasta.Objmap.resolve m inside with
        | Pasta.Objmap.Tensor _ -> true
        | _ -> false
      in
      let outside_ok =
        t_off = 0
        ||
        match Pasta.Objmap.resolve m (t_off - 1) with
        | Pasta.Objmap.Device_alloc _ -> true
        | _ -> false
      in
      is_tensor && outside_ok)

let prop_stats_scale_invariance =
  QCheck.Test.make ~name:"summarize commutes with positive scaling" ~count:200
    QCheck.(pair (array_of_size (Gen.int_range 1 30) (float_range 0.1 100.0)) (float_range 0.5 4.0))
    (fun (xs, k) ->
      let close a b = Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a) in
      let s = Pasta_util.Stats.summarize xs in
      let scaled = Pasta_util.Stats.summarize (Array.map (fun x -> x *. k) xs) in
      close (s.Pasta_util.Stats.mean *. k) scaled.Pasta_util.Stats.mean
      && close (s.Pasta_util.Stats.median *. k) scaled.Pasta_util.Stats.median
      && close (s.Pasta_util.Stats.p90 *. k) scaled.Pasta_util.Stats.p90)

let prop_sass_static_counts =
  QCheck.Test.make ~name:"memory PCs count matches region structure" ~count:100
    QCheck.(int_range 0 6)
    (fun nregions ->
      let regions =
        List.init nregions (fun i ->
            Gpusim.Kernel.region ~base:(4096 * (i + 1)) ~bytes:512 ~accesses:32 ())
      in
      let k =
        Gpusim.Kernel.make ~name:"p" ~grid:(Gpusim.Dim3.make 1)
          ~block:(Gpusim.Dim3.make 32) ~regions ()
      in
      (* No shared-memory block: exactly one LDG/STG per region. *)
      List.length (Gpusim.Sass.memory_pcs (Gpusim.Sass.listing k)) = nregions)

(* ---- Bounded ring buffer under overflow policies ---- *)

let overflow_gen =
  QCheck.make
    ~print:(fun p -> Pasta_util.Ring_buffer.overflow_to_string p)
    (QCheck.Gen.oneofl
       Pasta_util.Ring_buffer.[ Drop_oldest; Drop_newest; Block ])

let prop_ring_overflow_conservation =
  QCheck.Test.make ~name:"ring overflow: stored + dropped + stalled = pushed"
    ~count:300
    QCheck.(
      triple (int_range 1 16) (small_list small_nat) overflow_gen)
    (fun (cap, xs, policy) ->
      let rb = Pasta_util.Ring_buffer.create ~capacity:cap in
      (* Per push: entered the buffer, rejected at the door, or stalled the
         producer.  An eviction both enters the new and drops an old one. *)
      let entered = ref 0 and evicted = ref 0 and rejected = ref 0 in
      let stalled = ref 0 in
      List.iter
        (fun x ->
          match Pasta_util.Ring_buffer.push_overflow rb ~overflow:policy x with
          | `Stored -> incr entered
          | `Evicted _ -> incr entered; incr evicted
          | `Rejected -> incr rejected
          | `Full -> incr stalled)
        xs;
      !entered + !rejected + !stalled = List.length xs
      && Pasta_util.Ring_buffer.length rb = !entered - !evicted
      && Pasta_util.Ring_buffer.length rb = min cap !entered)

let prop_ring_drop_oldest_keeps_newest =
  QCheck.Test.make ~name:"drop-oldest keeps exactly the newest K" ~count:300
    QCheck.(pair (int_range 1 16) (small_list small_nat))
    (fun (cap, xs) ->
      let rb = Pasta_util.Ring_buffer.create ~capacity:cap in
      List.iter
        (fun x ->
          let (_ : [ `Stored | `Evicted of int | `Rejected | `Full ]) =
            Pasta_util.Ring_buffer.push_overflow rb
              ~overflow:Pasta_util.Ring_buffer.Drop_oldest x
          in
          ())
        xs;
      let rec drain acc =
        match Pasta_util.Ring_buffer.pop rb with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      let n = List.length xs in
      let expected =
        List.filteri (fun i _ -> i >= n - min cap n) xs
      in
      drain [] = expected)

let prop_ring_drop_newest_keeps_oldest =
  QCheck.Test.make ~name:"drop-newest keeps exactly the oldest K" ~count:300
    QCheck.(pair (int_range 1 16) (small_list small_nat))
    (fun (cap, xs) ->
      let rb = Pasta_util.Ring_buffer.create ~capacity:cap in
      List.iter
        (fun x ->
          let (_ : [ `Stored | `Evicted of int | `Rejected | `Full ]) =
            Pasta_util.Ring_buffer.push_overflow rb
              ~overflow:Pasta_util.Ring_buffer.Drop_newest x
          in
          ())
        xs;
      let rec drain acc =
        match Pasta_util.Ring_buffer.pop rb with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      let n = List.length xs in
      let expected = List.filteri (fun i _ -> i < min cap n) xs in
      drain [] = expected)

let prop_ring_block_never_loses =
  QCheck.Test.make ~name:"block policy never loses a record" ~count:300
    QCheck.(pair (int_range 1 8) (small_list small_nat))
    (fun (cap, xs) ->
      let rb = Pasta_util.Ring_buffer.create ~capacity:cap in
      let out = ref [] in
      let drain () =
        let rec go () =
          match Pasta_util.Ring_buffer.pop rb with
          | None -> ()
          | Some x -> out := x :: !out; go ()
        in
        go ()
      in
      List.iter
        (fun x ->
          match
            Pasta_util.Ring_buffer.push_overflow rb
              ~overflow:Pasta_util.Ring_buffer.Block x
          with
          | `Stored | `Evicted _ | `Rejected -> ()
          | `Full ->
              (* the producer stalls: drain, then the push must succeed *)
              drain ();
              (match
                 Pasta_util.Ring_buffer.push_overflow rb
                   ~overflow:Pasta_util.Ring_buffer.Block x
               with
              | `Stored -> ()
              | _ -> failwith "push after drain must store"))
        xs;
      drain ();
      List.rev !out = xs)

let suite =
  [
    qtest prop_histogram_merge_commutative;
    qtest prop_timeline_bucket_values_from_samples;
    qtest prop_canonical_api_idempotent;
    qtest prop_devmem_find_matches_scan;
    qtest prop_uvm_touch_residency;
    qtest prop_objmap_tensor_shadows_alloc;
    qtest prop_stats_scale_invariance;
    qtest prop_sass_static_counts;
    qtest prop_ring_overflow_conservation;
    qtest prop_ring_drop_oldest_keeps_newest;
    qtest prop_ring_drop_newest_keeps_oldest;
    qtest prop_ring_block_never_loses;
  ]
