(* The zero-copy columnar hot path vs the legacy per-record pipeline:
   whatever delivery tier the processor picks — Bigarray columns in
   place, the deprecated event-wrapped batch callback, or per-record
   unpacking — tool reports must be byte-identical at every domain
   count, with faults injected and sampling engaged, and a trace
   captured from the columnar path must replay to the exact live
   bytes. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

let ( let* ) x f = QCheck.Gen.( >>= ) x f

let bert_inference ctx () =
  let m = Dlfw.Bert.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
  Dlfw.Model.inference_iter ctx m

(* One live BERT run; [columnar:false] forces the legacy path through the
   same [ACCEL_PROF_COLUMNAR=0] override a user would set.  The overrides
   are cleared even if the run throws, so a failing case cannot poison
   the suite that runs after it. *)
let live_run ?rate ?capture ?fault_seed ~columnar ~domains ~tool () =
  Pasta.Config.set "ACCEL_PROF_DOMAINS" (string_of_int domains);
  if not columnar then Pasta.Config.set "ACCEL_PROF_COLUMNAR" "0";
  Fun.protect ~finally:(fun () ->
      Pasta.Config.unset "ACCEL_PROF_DOMAINS";
      Pasta.Config.unset "ACCEL_PROF_COLUMNAR")
  @@ fun () ->
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let faults =
    Option.map (fun seed -> Gpusim.Faults.create ~seed ()) fault_seed
  in
  let (), result =
    Pasta.Session.run ~sample_cap:256 ?sample_rate:rate ?faults ?capture
      ~tool device (bert_inference ctx)
  in
  Dlfw.Ctx.destroy ctx;
  (Format.asprintf "%t" result.Pasta.Session.report, result)

let hotness_run ?rate ?capture ?fault_seed ~columnar ~domains () =
  let hot = Pasta_tools.Hotness.create () in
  live_run ?rate ?capture ?fault_seed ~columnar ~domains
    ~tool:(Pasta_tools.Hotness.tool_fine hot)
    ()

let sanitizer_run ?rate ?fault_seed ~columnar ~domains () =
  let mc = Pasta_tools.Memory_charact.create ~variant:Cpu_sanitizer () in
  live_run ?rate ?fault_seed ~columnar ~domains
    ~tool:(Pasta_tools.Memory_charact.tool mc)
    ()

(* ------------------------------------------------------------------ *)
(* Columnar vs legacy: byte-identity under faults + sampling           *)
(* ------------------------------------------------------------------ *)

(* The headline property: for a random sub-1.0 sampling rate and fault
   seed, the columnar and legacy pipelines produce digest-identical
   reports at 1, 2, 4 and 8 domains — eight runs, one digest. *)
let prop_columnar_equals_legacy =
  let gen =
    let* rate = QCheck.Gen.oneofl [ 0.75; 0.5; 0.25 ] in
    let* seed = QCheck.Gen.int_range 1 1_000_000 in
    QCheck.Gen.return (rate, seed)
  in
  QCheck.Test.make
    ~name:
      "columnar = legacy: digests identical at 1/2/4/8 domains (faults + \
       sampling)"
    ~count:3
    (QCheck.make gen ~print:(fun (rate, seed) ->
         Printf.sprintf "rate=%g fault_seed=%d" rate seed))
    (fun (rate, seed) ->
      let fault_seed = Int64.of_int seed in
      let digests =
        List.concat_map
          (fun domains ->
            List.map
              (fun columnar ->
                let report, _ =
                  hotness_run ~rate ~fault_seed ~columnar ~domains ()
                in
                Digest.string report)
              [ true; false ])
          [ 1; 2; 4; 8 ]
      in
      match digests with
      | [] -> false
      | d0 :: rest -> List.for_all (String.equal d0) rest)

(* The same contract on the tool-side columns consumer: Cpu_sanitizer
   memory characterization reads the address column in place when
   columnar and falls back to the event-wrapped batch otherwise. *)
let test_sanitizer_columnar_equals_legacy () =
  let base, _ = sanitizer_run ~columnar:true ~domains:4 () in
  List.iter
    (fun (columnar, domains) ->
      let r, _ = sanitizer_run ~columnar ~domains () in
      check_bool
        (Printf.sprintf "sanitizer report identical (columnar=%b, %d domains)"
           columnar domains)
        true (String.equal base r))
    [ (false, 4); (true, 1); (false, 1); (true, 8) ]

(* ------------------------------------------------------------------ *)
(* Delivery-tier accounting: the deprecation counter                   *)
(* ------------------------------------------------------------------ *)

let deprecated_count metrics =
  List.fold_left
    (fun acc (name, _labels, v) ->
      if name = "pasta_deprecated_batch_tools" then acc + v else acc)
    0
    (Pasta_util.Metric.counter_samples metrics)

let test_deprecation_counter () =
  (* Columns-aware tool on the columnar path: nothing deprecated runs. *)
  let _, r = sanitizer_run ~columnar:true ~domains:2 () in
  check_int "columnar delivery leaves the deprecation counter at zero" 0
    (deprecated_count r.Pasta.Session.metrics);
  (* Forcing the legacy path sends the same tool through the deprecated
     event-wrapped batch callback — noted exactly once, not per batch. *)
  let _, r = sanitizer_run ~columnar:false ~domains:2 () in
  check_int "legacy batch delivery is counted once per processor" 1
    (deprecated_count r.Pasta.Session.metrics);
  check_bool "legacy run still delivered batches" true
    (r.Pasta.Session.health.Pasta.Session.batches_delivered > 0)

(* ------------------------------------------------------------------ *)
(* Capture -> replay round-trip on the columnar layout                 *)
(* ------------------------------------------------------------------ *)

let temp_trace () = Filename.temp_file "pasta_columnar" ".ptrace"

let test_columnar_capture_replay () =
  let path = temp_trace () in
  let live, result =
    hotness_run ~rate:0.5 ~fault_seed:24285L ~columnar:true ~domains:4
      ~capture:path ()
  in
  check_bool "capture recorded ops" true
    (result.Pasta.Session.health.Pasta.Session.events_recorded > 0);
  (* The batch layout itself went through the codec: the trace carries
     packed access_batch ops, not an unpacked per-record stream. *)
  let s = Pasta.Replay.stat path in
  check_bool "trace carries packed access_batch ops" true
    (List.mem_assoc "access_batch" s.Pasta.Replay.s_kinds);
  check_bool "trace carries no unpacked global_access ops" false
    (List.mem_assoc "global_access" s.Pasta.Replay.s_kinds);
  let hot = Pasta_tools.Hotness.create () in
  let o =
    Pasta.Replay.run ~mode:Pasta.Ptrace.Strict
      ~tool:(Pasta_tools.Hotness.tool_fine hot)
      path
  in
  let replayed = Format.asprintf "%t" o.Pasta.Replay.report in
  check_bool "columnar live vs replay byte-identical" true
    (String.equal live replayed);
  Sys.remove path

let suite =
  [
    qtest prop_columnar_equals_legacy;
    Alcotest.test_case "sanitizer columns consumer = legacy" `Quick
      test_sanitizer_columnar_equals_legacy;
    Alcotest.test_case "deprecated batch tools counted once" `Quick
      test_deprecation_counter;
    Alcotest.test_case "columnar capture replays byte-identical" `Quick
      test_columnar_capture_replay;
  ]
