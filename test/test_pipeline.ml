(* The domain-parallel preprocessing pipeline: pool semantics, the objmap
   resolve memo, batched delivery, range-filter accounting, and the
   determinism contract — tool output must be byte-identical for any
   domain count, with and without fault injection. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module Pool = Pasta_util.Domain_pool

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_map_order () =
  let pool = Pool.create 4 in
  (* 64 >= 4 * size, so this goes through the pooled path, not the
     sequential cutoff. *)
  let out = Pool.map pool 64 (fun i -> i * i) in
  Pool.shutdown pool;
  check_int "length" 64 (Array.length out);
  Array.iteri (fun i v -> check_int "index order" (i * i) v) out

let test_pool_size_one_inline () =
  let pool = Pool.create 1 in
  let seen = ref [] in
  Pool.run pool 8 (fun i -> seen := i :: !seen);
  Pool.shutdown pool;
  Alcotest.(check (list int))
    "size-1 pool runs inline, in index order"
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.rev !seen)

let test_pool_small_job_inline () =
  let pool = Pool.create 4 in
  (* Below the cutoff (n < 4 * size) the caller runs everything itself,
     so even with workers parked the order is sequential. *)
  let seen = ref [] in
  Pool.run pool 8 (fun i -> seen := i :: !seen);
  Pool.shutdown pool;
  Alcotest.(check (list int))
    "small jobs run inline" [ 0; 1; 2; 3; 4; 5; 6; 7 ] (List.rev !seen)

let test_pool_reuse () =
  let pool = Pool.create 3 in
  let a = Pool.map pool 24 (fun i -> i + 1) in
  let b = Pool.map pool 24 (fun i -> i * 2) in
  Pool.shutdown pool;
  check_int "first job" (24 * 25 / 2) (Array.fold_left ( + ) 0 a);
  check_int "second job on the same pool" (24 * 23) (Array.fold_left ( + ) 0 b)

let test_pool_exception () =
  let pool = Pool.create 2 in
  Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
      Pool.run pool 32 (fun i -> if i = 17 then failwith "boom"));
  (* The failed job drains fully; the pool stays usable. *)
  let out = Pool.map pool 16 (fun i -> i) in
  Pool.shutdown pool;
  check_int "pool survives a raising job" 15 out.(15)

(* ------------------------------------------------------------------ *)
(* Objmap resolve memo                                                 *)
(* ------------------------------------------------------------------ *)

let test_objmap_memo () =
  let m = Pasta.Objmap.create () in
  Pasta.Objmap.on_alloc m ~addr:0x1000 ~bytes:4096 ~managed:false;
  let h0, m0 = Pasta.Objmap.memo_stats m in
  check_int "no hits before any resolve" 0 h0;
  ignore (Pasta.Objmap.resolve m 0x1000);
  ignore (Pasta.Objmap.resolve m 0x1800);
  ignore (Pasta.Objmap.resolve m 0x1fff);
  let h, ms = Pasta.Objmap.memo_stats m in
  check_int "sequential lookups hit the memo" 2 h;
  check_int "first lookup misses" (m0 + 1) ms;
  (* A registry mutation must invalidate the memo: the same address now
     resolves to the tensor covering it, not the stale allocation. *)
  Pasta.Objmap.on_tensor_alloc m ~ptr:0x1000 ~bytes:4096 ~tag:"t";
  (match Pasta.Objmap.resolve m 0x1200 with
  | Pasta.Objmap.Tensor _ -> ()
  | o -> Alcotest.failf "memo not invalidated: got %s" (Pasta.Objmap.obj_label o));
  let _, ms' = Pasta.Objmap.memo_stats m in
  check_bool "post-mutation lookup was a miss" true (ms' > ms)

let test_processor_memo_counters () =
  let p = Pasta.Processor.create ~device:0 () in
  let m = Pasta.Processor.objmap p in
  Pasta.Objmap.on_alloc m ~addr:0x1000 ~bytes:4096 ~managed:false;
  ignore (Pasta.Objmap.resolve m 0x1000);
  ignore (Pasta.Objmap.resolve m 0x1004);
  let st = Pasta.Processor.stats p in
  check_int "hits surfaced in processor stats" 1 st.Pasta.Processor.objmap_memo_hits;
  check_int "misses surfaced in processor stats" 1 st.Pasta.Processor.objmap_memo_misses

(* ------------------------------------------------------------------ *)
(* Determinism across domain counts                                    *)
(* ------------------------------------------------------------------ *)

let bert_inference ctx () =
  let m = Dlfw.Bert.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
  Dlfw.Model.inference_iter ctx m

(* One BERT-inference run under the fine-grained parallel hotness tool at
   the given domain count; returns everything a divergence could show in. *)
let fine_run ?fault_seed domains =
  Pasta.Config.set "ACCEL_PROF_DOMAINS" (string_of_int domains);
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let hot = Pasta_tools.Hotness.create () in
  let faults = Option.map (fun seed -> Gpusim.Faults.create ~seed ()) fault_seed in
  let (), result =
    Pasta.Session.run ?faults ~sample_cap:256
      ~tool:(Pasta_tools.Hotness.tool_fine hot)
      device (bert_inference ctx)
  in
  Dlfw.Ctx.destroy ctx;
  Pasta.Config.unset "ACCEL_PROF_DOMAINS";
  ( result.Pasta.Session.events_seen,
    result.Pasta.Session.health.Pasta.Session.batches_delivered,
    Format.asprintf "%t" result.Pasta.Session.report )

let check_identical runs =
  match runs with
  | [] -> ()
  | (d0, (e0, b0, r0)) :: rest ->
      List.iter
        (fun (d, (e, b, r)) ->
          let label what = Printf.sprintf "%s: %d vs %d domains" what d0 d in
          check_int (label "events seen") e0 e;
          check_int (label "batches delivered") b0 b;
          check_bool (label "report byte-identical") true (String.equal r0 r))
        rest

let test_determinism_across_domains () =
  check_identical (List.map (fun d -> (d, fine_run d)) [ 1; 2; 8 ])

let test_determinism_under_faults () =
  (* Same pinned injector seed at every domain count: the fault pattern is
     part of the input, so the output must still not depend on domains. *)
  check_identical
    (List.map (fun d -> (d, fine_run ~fault_seed:24285L d)) [ 1; 2; 8 ])

(* ------------------------------------------------------------------ *)
(* Batched delivery vs the legacy per-record path                      *)
(* ------------------------------------------------------------------ *)

(* A Cpu_sanitizer probe in three shapes: the legacy per-record path, the
   batched path with a per-record-only tool (the processor must unpack
   batches into the identical record stream), and the batched path with a
   batch-aware tool (records arrive packed, accounting must still match). *)
let sanitizer_count ?range ?(batch_aware = false) ~batch_delivery () =
  Pasta.Config.set "ACCEL_PROF_BATCH_DELIVERY" (if batch_delivery then "1" else "0");
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let records = ref 0 and weight = ref 0 and addr_sum = ref 0 in
  let base = Pasta.Tool.default ~fine_grained:Pasta.Tool.Cpu_sanitizer "probe" in
  let tool =
    if batch_aware then
      {
        base with
        Pasta.Tool.on_access_batch =
          Some
            (fun _ b ->
              let module W = Gpusim.Warp in
              records := !records + b.W.b_len;
              for i = 0 to b.W.b_len - 1 do
                weight := !weight + b.W.weights.{i};
                addr_sum := !addr_sum + b.W.addrs.{i}
              done);
      }
    else
      {
        base with
        Pasta.Tool.on_access =
          (fun _ a ->
            incr records;
            weight := !weight + a.Pasta.Event.weight;
            addr_sum := !addr_sum + a.Pasta.Event.addr);
      }
  in
  let (), result =
    Pasta.Session.run ?range ~sample_cap:64 ~tool device (bert_inference ctx)
  in
  Dlfw.Ctx.destroy ctx;
  Pasta.Config.unset "ACCEL_PROF_BATCH_DELIVERY";
  (!records, !weight, !addr_sum, result.Pasta.Session.health)

let test_batch_vs_per_record_equivalence () =
  let r0, w0, s0, h0 = sanitizer_count ~batch_delivery:false () in
  let r1, w1, s1, h1 = sanitizer_count ~batch_delivery:true () in
  let r2, w2, s2, h2 = sanitizer_count ~batch_aware:true ~batch_delivery:true () in
  check_bool "records flowed" true (r0 > 0);
  check_int "unpacked batches = legacy record count" r0 r1;
  check_int "unpacked batches = legacy weight sum" w0 w1;
  check_int "unpacked batches = legacy address checksum" s0 s1;
  check_int "packed batches = legacy record count" r0 r2;
  check_int "packed batches = legacy weight sum" w0 w2;
  check_int "packed batches = legacy address checksum" s0 s2;
  check_bool "batch-aware tool sees packed batches" true
    (h2.Pasta.Session.batches_delivered > 0);
  (* [batches_delivered] counts batch-aware deliveries only. *)
  check_int "per-record tools count none" 0 h1.Pasta.Session.batches_delivered;
  check_int "legacy path counts none" 0 h0.Pasta.Session.batches_delivered

(* ------------------------------------------------------------------ *)
(* Merged summary invariants                                           *)
(* ------------------------------------------------------------------ *)

let test_summary_weight_sums () =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let summaries = ref 0 and bad = ref 0 in
  let tool =
    {
      (Pasta.Tool.default ~fine_grained:Pasta.Tool.Gpu_parallel "sums") with
      Pasta.Tool.on_device_summary =
        (fun _ s ->
          incr summaries;
          let osum =
            List.fold_left (fun a (_, w) -> a + w) 0 s.Pasta.Devagg.objects
          and bsum =
            List.fold_left (fun a (_, w) -> a + w) 0 s.Pasta.Devagg.blocks
          in
          (* Objects, blocks and the total are three tallies of the same
             records; sharding and merging must not lose or double-count. *)
          if osum <> s.Pasta.Devagg.true_accesses then incr bad;
          if bsum <> s.Pasta.Devagg.true_accesses then incr bad;
          if s.Pasta.Devagg.sampled_records > s.Pasta.Devagg.true_accesses then
            incr bad;
          (* Coalesced intervals must come out sorted and disjoint. *)
          let rec sorted = function
            | (b, l) :: ((b', _) :: _ as rest) ->
                b < l && l < b' && sorted rest
            | [ (b, l) ] -> b < l
            | [] -> true
          in
          if not (sorted s.Pasta.Devagg.coalesced) then incr bad)
    }
  in
  let (), _ = Pasta.Session.run ~sample_cap:128 ~tool device (bert_inference ctx) in
  Dlfw.Ctx.destroy ctx;
  check_bool "summaries flowed" true (!summaries > 0);
  check_int "invariant violations" 0 !bad

(* ------------------------------------------------------------------ *)
(* Range-filter accounting                                             *)
(* ------------------------------------------------------------------ *)

let test_filtered_accounting () =
  let all, _, _, h_all = sanitizer_count ~batch_delivery:true () in
  let part, _, _, h =
    sanitizer_count ~range:(Pasta.Range.create ~start_grid:8 ()) ~batch_delivery:true ()
  in
  check_int "unfiltered run filters nothing" 0 h_all.Pasta.Session.accesses_filtered;
  check_int "lossless policy: no drops" 0 h.Pasta.Session.records_dropped;
  check_bool "early kernels were filtered" true
    (h.Pasta.Session.accesses_filtered > 0);
  (* Filtering withholds, it doesn't lose: delivered + filtered must equal
     what an unfiltered run delivers. *)
  check_int "delivered + filtered = total" all
    (part + h.Pasta.Session.accesses_filtered)

let suite =
  [
    ("pool map preserves index order", `Quick, test_pool_map_order);
    ("pool of size 1 runs inline", `Quick, test_pool_size_one_inline);
    ("small jobs run inline", `Quick, test_pool_small_job_inline);
    ("pool is reusable across jobs", `Quick, test_pool_reuse);
    ("pool propagates exceptions", `Quick, test_pool_exception);
    ("objmap resolve memo", `Quick, test_objmap_memo);
    ("memo counters in processor stats", `Quick, test_processor_memo_counters);
    ("identical output at 1/2/8 domains", `Quick, test_determinism_across_domains);
    ("identical output under faults", `Quick, test_determinism_under_faults);
    ("batched = per-record stream", `Quick, test_batch_vs_per_record_equivalence);
    ("summary weight sums", `Quick, test_summary_weight_sums);
    ("range-filter accounting adds up", `Quick, test_filtered_accounting);
  ]
