(* The fault-tolerance layer: tool sandboxing (Guard), bounded record
   buffers, the session watchdog and deterministic fault injection.

   The contract under test is the paper's "attaching a profiler must never
   take the workload down" — here pushed to the adversarial extreme: tools
   that always raise, producers that outrun the buffer, and a device that
   actively corrupts, drops and duplicates its own telemetry. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let mk_kernel_info ?(grid_id = 1) ?(name = "k") () =
  {
    Pasta.Event.device_id = 0;
    grid_id;
    stream = 0;
    name;
    grid = Gpusim.Dim3.make 1;
    block = Gpusim.Dim3.make 32;
    shared_bytes = 0;
    arg_ptrs = [];
    py_stack = [];
    native_stack = [];
  }

let mk_access addr =
  { Pasta.Event.addr; size = 4; write = false; pc = 0; warp = 0; weight = 1 }

(* ---- Circuit breaker: a raising tool never aborts the workload ---- *)

let test_raising_tool_quarantined () =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let bomb =
    {
      (Pasta.Tool.default "bomb") with
      Pasta.Tool.on_event = (fun _ -> failwith "boom");
      report = (fun ppf -> Format.fprintf ppf "bomb: survived@.");
    }
  in
  let v, result =
    Pasta.Session.run ~tool:bomb device (fun () ->
        let m = Dlfw.Bert.build ~batch:1 ~seq:32 ~layers:2 ~dim:64 ~heads:4 ctx in
        Dlfw.Model.inference_iter ctx m;
        42)
  in
  let h = result.Pasta.Session.health in
  check_int "workload return value unaffected" 42 v;
  check_bool "failures counted" true (h.Pasta.Session.tool_failures >= 10);
  check_bool "breaker tripped" true (h.Pasta.Session.quarantines >= 1);
  check_bool "events suppressed during quarantine" true
    (h.Pasta.Session.events_suppressed > 0);
  check_bool "on_event named in breakdown" true
    (List.mem_assoc "on_event" h.Pasta.Session.failures_by_callback);
  check_bool "quarantine incident emitted" true
    (List.exists
       (fun (e : Pasta.Event.t) ->
         match e.Pasta.Event.payload with
         | Pasta.Event.Tool_quarantined { tool; _ } -> String.equal tool "bomb"
         | _ -> false)
       h.Pasta.Session.incidents);
  (* The report path is exception-safe and still reachable. *)
  check_string "report still runs" "bomb: survived\n"
    (Format.asprintf "%t" result.Pasta.Session.report);
  Dlfw.Ctx.destroy ctx

let test_raising_tool_matches_clean_run () =
  (* The supervised-but-broken run must see the same workload as a clean
     one: same kernel count, same simulated event stream underneath. *)
  let run tool =
    let device = Gpusim.Device.create Gpusim.Arch.a100 in
    let ctx = Dlfw.Ctx.create device in
    let (), result =
      Pasta.Session.run ~tool device (fun () ->
          let m = Dlfw.Bert.build ~batch:1 ~seq:32 ~layers:2 ~dim:64 ~heads:4 ctx in
          Dlfw.Model.inference_iter ctx m)
    in
    let t = Gpusim.Device.now_us device in
    Dlfw.Ctx.destroy ctx;
    (result.Pasta.Session.kernels, result.Pasta.Session.events_seen, t)
  in
  let clean = run (Pasta.Tool.default "quiet") in
  let broken =
    run
      {
        (Pasta.Tool.default "bomb") with
        Pasta.Tool.on_event = (fun _ -> failwith "boom");
      }
  in
  check_bool "kernels, events and timing identical" true (clean = broken)

let test_guard_half_open_reinstates () =
  let trips = ref 0 in
  let tool =
    { (Pasta.Tool.default "flaky") with Pasta.Tool.on_event = ignore }
  in
  let g =
    Pasta.Guard.create ~threshold:2 ~cooldown_kernels:3
      ~on_trip:(fun ~failures:_ -> incr trips)
      tool
  in
  let boom _ = failwith "boom" in
  Pasta.Guard.call g Pasta.Guard.On_event (fun t -> boom t.Pasta.Tool.name);
  Pasta.Guard.call g Pasta.Guard.On_event (fun t -> boom t.Pasta.Tool.name);
  check_string "quarantined after threshold" "quarantined"
    (Pasta.Guard.state_name (Pasta.Guard.state g));
  check_int "tripped once" 1 !trips;
  (* Suppressed while quarantined. *)
  let ran = ref false in
  Pasta.Guard.call g Pasta.Guard.On_event (fun _ -> ran := true);
  check_bool "suppressed during quarantine" false !ran;
  check_bool "suppression counted" true (Pasta.Guard.suppressed_count g >= 1);
  (* Cooldown elapses in kernels; the next call is the half-open probe. *)
  Pasta.Guard.note_kernel g;
  Pasta.Guard.note_kernel g;
  Pasta.Guard.note_kernel g;
  check_string "half-open after cooldown" "half-open"
    (Pasta.Guard.state_name (Pasta.Guard.state g));
  Pasta.Guard.call g Pasta.Guard.On_event (fun _ -> ran := true);
  check_bool "probe ran" true !ran;
  check_string "reinstated on probe success" "closed"
    (Pasta.Guard.state_name (Pasta.Guard.state g));
  check_int "reinstatement counted" 1 (Pasta.Guard.reinstated_count g)

(* ---- Bounded buffers: exact drop accounting per policy ---- *)

let overflow_run policy =
  let p =
    Pasta.Processor.create ~range:(Pasta.Range.create ()) ~buffer_capacity:4
      ~overflow_policy:policy ~device:0 ()
  in
  let seen = ref [] in
  Pasta.Processor.set_tool p
    {
      (Pasta.Tool.default "sink") with
      Pasta.Tool.on_access =
        (fun _ a -> seen := a.Pasta.Event.addr :: !seen);
    };
  let ki = mk_kernel_info () in
  for i = 1 to 10 do
    Pasta.Processor.submit_access p ~time_us:0.0 ki (mk_access i)
  done;
  Pasta.Processor.flush_records p;
  let stats = Pasta.Processor.stats p in
  (List.rev !seen, stats.Pasta.Processor.records_dropped,
   stats.Pasta.Processor.buffer_stalls)

let test_drop_oldest_counts () =
  let delivered, dropped, stalls =
    overflow_run Pasta_util.Ring_buffer.Drop_oldest
  in
  (* 10 pushed into capacity 4: the six oldest are evicted. *)
  check_int "exactly 6 dropped" 6 dropped;
  check_int "no stalls" 0 stalls;
  Alcotest.(check (list int)) "newest 4 survive" [ 7; 8; 9; 10 ] delivered

let test_drop_newest_counts () =
  let delivered, dropped, stalls =
    overflow_run Pasta_util.Ring_buffer.Drop_newest
  in
  (* 10 pushed into capacity 4: the six newest are rejected at the door. *)
  check_int "exactly 6 dropped" 6 dropped;
  check_int "no stalls" 0 stalls;
  Alcotest.(check (list int)) "oldest 4 survive" [ 1; 2; 3; 4 ] delivered

let test_block_is_lossless () =
  let delivered, dropped, stalls = overflow_run Pasta_util.Ring_buffer.Block in
  check_int "nothing dropped" 0 dropped;
  check_bool "producer stalled to drain" true (stalls >= 1);
  Alcotest.(check (list int)) "all 10 delivered in order"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    delivered

(* ---- Fault injection: deterministic, and survivable ---- *)

let fault_run seed =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let faults = Gpusim.Faults.create ~seed () in
  let kf = Pasta_tools.Kernel_freq.create () in
  let tx = Pasta.Trace_export.create () in
  (* The injector rides on the first session to attach; later sessions on
     the same device never stack a second one. *)
  let trace_session =
    Pasta.Session.attach ~faults ~tool:(Pasta.Trace_export.tool tx) device
  in
  let (), result =
    Pasta.Session.run ~faults ~tool:(Pasta_tools.Kernel_freq.tool kf) device
      (fun () ->
        let m = Dlfw.Bert.build ~batch:1 ~seq:32 ~layers:2 ~dim:64 ~heads:4 ctx in
        Dlfw.Model.inference_iter ctx m;
        Dlfw.Model.train_iter ctx m)
  in
  let _ = Pasta.Session.detach trace_session in
  let json = Pasta.Trace_export.to_json tx in
  let report = Format.asprintf "%t" result.Pasta.Session.report in
  let health = Format.asprintf "%a" Pasta.Session.pp_health result.Pasta.Session.health in
  let fs = result.Pasta.Session.health.Pasta.Session.fault_stats in
  Dlfw.Ctx.destroy ctx;
  (json, report, health, fs)

let test_fault_injection_deterministic () =
  let j1, r1, h1, fs1 = fault_run 0x5EEDL in
  let j2, r2, h2, fs2 = fault_run 0x5EEDL in
  check_bool "event stream byte-identical" true (String.equal j1 j2);
  check_bool "tool report byte-identical" true (String.equal r1 r2);
  check_bool "health report byte-identical" true (String.equal h1 h2);
  (match (fs1, fs2) with
  | Some a, Some b ->
      check_int "same dropped" a.Gpusim.Faults.dropped_events
        b.Gpusim.Faults.dropped_events;
      check_int "same duplicated" a.Gpusim.Faults.duplicated_events
        b.Gpusim.Faults.duplicated_events;
      check_int "same corrupted" a.Gpusim.Faults.corrupted_accesses
        b.Gpusim.Faults.corrupted_accesses;
      check_int "same ecc" a.Gpusim.Faults.ecc_errors b.Gpusim.Faults.ecc_errors;
      check_bool "faults actually fired" true
        (a.Gpusim.Faults.dropped_events + a.Gpusim.Faults.duplicated_events
         + a.Gpusim.Faults.ecc_errors
         > 0)
  | _ -> Alcotest.fail "fault stats missing from health report")

let test_fault_seed_matters () =
  let j1, _, _, _ = fault_run 0x5EEDL in
  let j2, _, _, _ = fault_run 0xACE1L in
  check_bool "different seeds, different streams" false (String.equal j1 j2)

let test_stuck_kernel_trips_watchdog () =
  (* Force the stuck-kernel fault on every launch; the session watchdog
     must flag them without the run failing. *)
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let rates =
    {
      Gpusim.Faults.stuck_kernel = 1.0;
      drop_event = 0.0;
      duplicate_event = 0.0;
      corrupt_access = 0.0;
      ecc_per_kernel = 0.0;
    }
  in
  let faults = Gpusim.Faults.create ~rates ~seed:7L () in
  (* A tiny kernel x10000 is still short; lower the limit so the trip is
     about detection, not about waiting out a real hour-long hang. *)
  Pasta.Config.set "ACCEL_PROF_WATCHDOG_US" "10.0";
  Fun.protect ~finally:(fun () -> Pasta.Config.unset "ACCEL_PROF_WATCHDOG_US")
  @@ fun () ->
  let (), result =
    Pasta.Session.run ~faults ~tool:(Pasta.Tool.default "quiet") device
      (fun () ->
        let x = Dlfw.Ops.new_tensor ctx [ 256; 256 ] Dlfw.Dtype.F32 in
        let y = Dlfw.Ops.relu ctx x in
        Dlfw.Tensor.release x;
        Dlfw.Tensor.release y)
  in
  let h = result.Pasta.Session.health in
  check_bool "watchdog tripped" true (h.Pasta.Session.watchdog_trips <> []);
  (match h.Pasta.Session.fault_stats with
  | Some fs -> check_bool "stuck kernels counted" true (fs.Gpusim.Faults.stuck_kernels >= 1)
  | None -> Alcotest.fail "fault stats missing");
  Dlfw.Ctx.destroy ctx

let test_faults_cleared_after_session () =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let faults = Gpusim.Faults.create ~seed:1L () in
  let (), _ =
    Pasta.Session.run ~faults ~tool:(Pasta.Tool.default "quiet") device
      (fun () -> ())
  in
  check_bool "injector removed at detach" true
    (Gpusim.Device.faults device = None)

let suite =
  [
    ("raising tool is quarantined, workload survives", `Quick,
     test_raising_tool_quarantined);
    ("broken tool does not perturb the workload", `Quick,
     test_raising_tool_matches_clean_run);
    ("guard half-open probe reinstates", `Quick, test_guard_half_open_reinstates);
    ("drop-oldest: exact counts", `Quick, test_drop_oldest_counts);
    ("drop-newest: exact counts", `Quick, test_drop_newest_counts);
    ("block policy is lossless", `Quick, test_block_is_lossless);
    ("fault injection deterministic under fixed seed", `Quick,
     test_fault_injection_deterministic);
    ("fault seed changes the stream", `Quick, test_fault_seed_matters);
    ("stuck kernel trips the watchdog", `Quick, test_stuck_kernel_trips_watchdog);
    ("injector cleared after session", `Quick, test_faults_cleared_after_session);
  ]
