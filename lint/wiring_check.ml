(* Wiring checker, run as part of the default [dune runtest] via the root
   [wiring-check] alias.  Catches the three easiest ways for coverage to
   rot silently:

   - a test module that exists on disk but was never added to
     [test/test_main.ml] — it would compile, sit in the executable and
     never run;
   - a [BENCH_*.json] artifact named anywhere under [bench/] (a gate, a
     doc string, a comparison) with no [open_out "BENCH_*.json"] producer
     left in the bench sources;
   - a dune alias defined in [test/dune] (an env-variant re-run like
     [@faults] or [@fleet]) that is missing from the [runtest] alias deps
     — it would only fire when invoked by hand;
   - a load-bearing alias ([@columnar], [@faults], ...) or benchmark
     artifact deleted outright, or the [BENCH_pipeline.json] producer
     dropping its honest-statistics fields (rep count, median/min walls).

   Usage: wiring_check TEST_DIR BENCH_DIR — prints one line per violation
   and exits 1 if any were found. *)

let violations = ref 0

let complain path what =
  incr violations;
  Printf.eprintf "%s: %s\n" path what

let read_file path =
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  body

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let ml_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.extension f = ".ml")
  |> List.sort compare

(* --- every test/test_*.ml is wired into test_main.ml --- *)

let check_test_wiring dir =
  let main = Filename.concat dir "test_main.ml" in
  if not (Sys.file_exists main) then complain main "missing test driver"
  else begin
    let driver = read_file main in
    List.iter
      (fun f ->
        if
          String.length f > 5
          && String.sub f 0 5 = "test_"
          && f <> "test_main.ml"
        then begin
          let modname = String.capitalize_ascii (Filename.chop_extension f) in
          if not (contains driver (modname ^ ".")) then
            complain (Filename.concat dir f)
              (Printf.sprintf "not wired into test_main.ml (no %s.suite)" modname)
        end)
      (ml_files dir)
  end

(* --- every alias defined in test/dune rides the default runtest --- *)

let index_of body from needle =
  let h = String.length body and n = String.length needle in
  let rec go i =
    if i + n > h then None
    else if String.sub body i n = needle then Some i
    else go (i + 1)
  in
  if n = 0 then Some from else go from

(* End of the s-expression opening at [start] (which must point at '('). *)
let sexp_end body start =
  let len = String.length body in
  let depth = ref 0 and i = ref start and stop = ref (-1) in
  while !stop < 0 && !i < len do
    (match body.[!i] with
    | '(' -> incr depth
    | ')' ->
        decr depth;
        if !depth = 0 then stop := !i + 1
    | _ -> ());
    incr i
  done;
  if !stop < 0 then len else !stop

let check_alias_wiring dir =
  let path = Filename.concat dir "dune" in
  if not (Sys.file_exists path) then complain path "missing dune file"
  else begin
    let body = read_file path in
    match index_of body 0 "(name runtest)" with
    | None -> complain path "no (alias (name runtest)) block"
    | Some rp ->
        let deps_start, deps_end =
          match index_of body rp "(deps" with
          | Some d -> (d, sexp_end body d)
          | None -> (rp, rp)
        in
        let deps = String.sub body deps_start (deps_end - deps_start) in
        let is_name_char c =
          (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' || c = '_'
        in
        let rec scan i =
          match index_of body i "(alias " with
          | None -> ()
          | Some p ->
              let j = ref (p + 7) in
              while !j < String.length body && is_name_char body.[!j] do
                incr j
              done;
              let name = String.sub body (p + 7) (!j - (p + 7)) in
              (* skip the runtest block itself, empty names (the
                 "(alias (name ...))" form) and references inside deps *)
              if
                name <> "" && name <> "runtest"
                && not (p >= deps_start && p < deps_end)
                && not (contains deps (Printf.sprintf "(alias %s)" name))
              then
                complain path
                  (Printf.sprintf "alias %s is defined but not in the runtest deps"
                     name);
              scan !j
        in
        scan 0
  end

(* --- load-bearing aliases and artifacts must exist at all --- *)

(* The generic checks above only catch an alias that exists but fell off
   the runtest deps, or an artifact that is named but never written.  An
   alias or producer deleted outright would pass both, so the suites and
   benchmark gates the acceptance pipeline leans on are pinned here by
   name. *)
let required_aliases = [ "faults"; "trace"; "sampling"; "columnar"; "fleet" ]

let check_required_aliases dir =
  let path = Filename.concat dir "dune" in
  if Sys.file_exists path then begin
    let body = read_file path in
    List.iter
      (fun name ->
        if not (contains body (Printf.sprintf "(alias %s)" name)) then
          complain path
            (Printf.sprintf "required alias %s is not defined" name))
      required_aliases
  end

(* BENCH_pipeline.json is the perf-acceptance artifact: it must have a
   producer, and the producer must still emit the honest-statistics
   fields (multi-rep medians and minima, not single-shot walls). *)
(* The field needles match the escaped JSON-key literals as they appear
   in the OCaml bench source (["\"reps\""] prints from [{|\"reps\"|}]). *)
let required_bench_fields =
  [ ("BENCH_pipeline.json", [ {|\"reps\"|}; "wall_median_s"; "wall_min_s" ]);
    ("BENCH_telemetry.json", [ {|\"reps\"|} ]) ]

let check_required_bench dir =
  let bodies =
    List.map (fun f -> read_file (Filename.concat dir f)) (ml_files dir)
  in
  List.iter
    (fun (artifact, fields) ->
      let producer =
        List.find_opt
          (fun body -> contains body (Printf.sprintf {|open_out "%s"|} artifact))
          bodies
      in
      match producer with
      | None ->
          complain dir (Printf.sprintf "no producer writes %s" artifact)
      | Some body ->
          List.iter
            (fun field ->
              if not (contains body field) then
                complain dir
                  (Printf.sprintf "%s producer no longer emits %s" artifact
                     field))
            fields)
    required_bench_fields

(* --- every BENCH_*.json named under bench/ has a producer --- *)

(* Collect every "BENCH_<name>.json" literal occurring in [body]. *)
let bench_names body =
  let names = ref [] in
  let len = String.length body in
  let is_name_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  let i = ref 0 in
  while !i < len do
    if !i + 6 <= len && String.sub body !i 6 = "BENCH_" then begin
      let j = ref (!i + 6) in
      while !j < len && is_name_char body.[!j] do
        incr j
      done;
      if !j + 5 <= len && String.sub body !j 5 = ".json" then begin
        let name = String.sub body !i (!j + 5 - !i) in
        if not (List.mem name !names) then names := name :: !names;
        i := !j + 5
      end
      else i := !j
    end
    else incr i
  done;
  List.sort compare !names

let check_bench_producers dir =
  let bodies = List.map (fun f -> (f, read_file (Filename.concat dir f))) (ml_files dir) in
  let all = List.concat_map (fun (_, body) -> bench_names body) bodies in
  List.iter
    (fun name ->
      let produced =
        List.exists
          (fun (_, body) -> contains body (Printf.sprintf {|open_out "%s"|} name))
          bodies
      in
      if not produced then
        complain dir (Printf.sprintf "%s is named but nothing writes it" name))
    (List.sort_uniq compare all)

let () =
  (match Array.to_list Sys.argv with
  | [ _; test_dir; bench_dir ] ->
      check_test_wiring test_dir;
      check_alias_wiring test_dir;
      check_required_aliases test_dir;
      check_bench_producers bench_dir;
      check_required_bench bench_dir
  | _ ->
      prerr_endline "usage: wiring_check TEST_DIR BENCH_DIR";
      exit 2);
  if !violations > 0 then begin
    Printf.eprintf "wiring_check: %d violation%s\n" !violations
      (if !violations = 1 then "" else "s");
    exit 1
  end
