(* Source-hygiene checker, run as part of the default [dune runtest] via
   the root [fmt-check] alias.  ocamlformat is not part of the toolchain,
   so full style enforcement is out of reach; this enforces the invariants
   the tree actually maintains and that ocamlformat would otherwise own:

   - no tab characters in OCaml sources or dune files,
   - no trailing whitespace,
   - LF line endings (no CR),
   - every file ends with exactly one newline.

   Usage: fmt_check DIR...  — walks each directory recursively, checks
   every [.ml]/[.mli]/[.mll]/[.mly] file and every file named [dune],
   prints one line per violation and exits 1 if any were found. *)

let violations = ref 0

let complain path line what =
  incr violations;
  Printf.eprintf "%s:%d: %s\n" path line what

let wanted path =
  match Filename.basename path with
  | "dune" -> true
  | base -> (
      match Filename.extension base with
      | ".ml" | ".mli" | ".mll" | ".mly" -> true
      | _ -> false)

let check_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  if len > 0 then begin
    let line = ref 1 in
    String.iteri
      (fun i c ->
        (match c with
        | '\t' -> complain path !line "tab character"
        | '\r' -> complain path !line "CR line ending"
        | ' ' when i + 1 < len && body.[i + 1] = '\n' ->
            complain path !line "trailing whitespace"
        | _ -> ());
        if c = '\n' then incr line)
      body;
    if body.[len - 1] <> '\n' then
      complain path !line "no newline at end of file"
    else if len > 1 && body.[len - 2] = '\n' then
      complain path (!line - 1) "trailing blank line at end of file"
  end

let rec walk path =
  if Sys.is_directory path then
    Array.iter
      (fun entry ->
        if entry <> "_build" && entry.[0] <> '.' then
          walk (Filename.concat path entry))
      (Sys.readdir path)
  else if wanted path then check_file path

let () =
  let roots =
    match List.tl (Array.to_list Sys.argv) with [] -> [ "." ] | l -> l
  in
  List.iter walk roots;
  if !violations > 0 then begin
    Printf.eprintf "fmt_check: %d violation(s)\n" !violations;
    exit 1
  end
