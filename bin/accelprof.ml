(* accelprof: the PASTA profiling client (the paper's artifact runs
   `accelprof -v -t <tool> <executable> [args...]`; here the "executable"
   is one of the simulated Table IV workloads).

   Examples:
     accelprof -t kernel_freq BERT
     accelprof -t memory_charact --mode train --gpu rtx3060 GPT-2
     accelprof -t hotness --start-grid 100 --end-grid 200 BERT
     accelprof record run.ptrace -t hotness BERT
     accelprof replay run.ptrace --tools hotness,kernel_freq
     accelprof trace stat run.ptrace
     accelprof trace diff a.ptrace b.ptrace
     accelprof list-tools *)

open Cmdliner

(* Satellite of the fleet PR: a run that *completed* but lost data — tools
   quarantined, records dropped, fleet devices missing — must not exit 0.
   Success paths set this and the process exits 3 ("degraded") instead;
   real failures keep their usual nonzero codes. *)
let exit_degraded = 3
let degraded = ref false

let arch_of_string = function
  | "a100" -> Ok Gpusim.Arch.a100
  | "rtx3060" -> Ok Gpusim.Arch.rtx3060
  | "mi300x" -> Ok Gpusim.Arch.mi300x
  | s -> Error (`Msg (Printf.sprintf "unknown GPU %S (a100 | rtx3060 | mi300x)" s))

let arch_conv =
  Arg.conv
    ( (fun s -> arch_of_string (String.lowercase_ascii s)),
      fun ppf a -> Format.pp_print_string ppf a.Gpusim.Arch.name )

let mode_conv =
  Arg.conv
    ( (fun s ->
        match String.lowercase_ascii s with
        | "inference" | "infer" -> Ok Dlfw.Runner.Inference
        | "train" | "training" -> Ok Dlfw.Runner.Train
        | s -> Error (`Msg (Printf.sprintf "unknown mode %S (inference | train)" s))),
      fun ppf m -> Format.pp_print_string ppf (Dlfw.Runner.mode_to_string m) )

let tool_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "t"; "tool" ] ~docv:"TOOL"
        ~doc:"PASTA tool to run (see $(b,list-tools)); defaults to \\$PASTA_TOOL.")

let gpu_arg =
  Arg.(
    value
    & opt arch_conv Gpusim.Arch.a100
    & info [ "gpu" ] ~docv:"GPU" ~doc:"Simulated GPU: a100, rtx3060 or mi300x.")

let mode_arg =
  Arg.(
    value
    & opt mode_conv Dlfw.Runner.Inference
    & info [ "mode" ] ~docv:"MODE" ~doc:"Workload mode: inference or train.")

let iters_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "iters" ] ~docv:"N" ~doc:"Iterations (default: the per-model evaluation count).")

let sample_cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sample-cap" ] ~docv:"N"
        ~doc:"Max materialized trace records per kernel region \
              (ACCEL_PROF_ENV_SAMPLE_RATE).")

let rate_conv =
  Arg.conv
    ( (fun s ->
        match float_of_string_opt s with
        | Some r when r > 0.0 && r <= 1.0 -> Ok r
        | _ -> Error (`Msg (Printf.sprintf "bad sample rate %S (must be in (0, 1])" s))),
      fun ppf r -> Format.fprintf ppf "%g" r )

let sample_rate_arg =
  Arg.(
    value
    & opt (some rate_conv) None
    & info [ "sample-rate" ] ~docv:"RATE"
        ~doc:
          "Keep this fraction of fine-grained records, in (0, 1] \
           (ACCEL_PROF_SAMPLE_RATE). Surviving records carry \
           inverse-probability weights, so weighted statistics stay \
           unbiased; reports annotate estimates with their sampling error.")

let budget_conv =
  Arg.conv
    ( (fun s ->
        match Pasta.Config.parse_budget s with
        | Some f -> Ok f
        | None ->
            Error
              (`Msg
                (Printf.sprintf "bad overhead budget %S (use \"5%%\" or \"0.05\")" s))),
      fun ppf f -> Format.fprintf ppf "%g" f )

let budget_arg =
  Arg.(
    value
    & opt (some budget_conv) None
    & info [ "overhead-budget" ] ~docv:"PCT"
        ~doc:
          "Adaptive sampling: keep analysis overhead under this fraction of \
           workload time, e.g. $(b,5%) or $(b,0.05) \
           (ACCEL_PROF_OVERHEAD_BUDGET). A closed-loop governor lowers the \
           record sampling rate when the measured overhead exceeds the \
           budget and recovers it when there is headroom; combined with \
           $(b,--sample-rate), that rate is the fallback when telemetry is \
           off.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Domain-pool size for parallel device-side preprocessing \
           (ACCEL_PROF_DOMAINS). 1 runs fully serial; the default is the \
           machine's recommended domain count, capped at 8. Results are \
           identical for every value.")

let devices_arg =
  Arg.(
    value & opt int 1
    & info [ "devices" ] ~docv:"N"
        ~doc:
          "Profile a fleet of $(docv) simulated devices instead of one \
           workload: each device runs a seeded profiling shard under a \
           per-device deadline with retried, backed-off attempts, and the \
           per-device summaries merge through a failure-tolerant tree \
           reduction. With $(b,--devices) > 1 the MODEL argument is ignored \
           and the partial fleet report is printed.")

let fleet_fanout_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fleet-fanout" ] ~docv:"K"
        ~doc:
          "Merge-tree fanout for fleet aggregation, >= 2 \
           (ACCEL_PROF_FLEET_FANOUT; default 8).")

let strict_fleet_arg =
  Arg.(
    value & flag
    & info [ "strict-fleet" ]
        ~doc:
          "Treat fleet devices absent from the aggregate (missing or \
           dropped at a merge node) as a hard failure instead of \
           completing with a partial report and the degraded exit code \
           (ACCEL_PROF_STRICT_FLEET).")

let start_grid_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "start-grid" ] ~docv:"ID" ~doc:"First kernel launch to analyze (START_GRID_ID).")

let end_grid_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "end-grid" ] ~docv:"ID" ~doc:"Last kernel launch to analyze (END_GRID_ID).")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print session statistics.")

let health_arg =
  Arg.(
    value & flag
    & info [ "health" ]
        ~doc:
          "Print the pipeline health report: tool failures and quarantines, \
           bounded-buffer drop counts, watchdog trips, trace-capture/replay \
           accounting and injected-fault totals.")

let inject_faults_arg =
  Arg.(
    value & flag
    & info [ "inject-faults" ]
        ~doc:
          "Enable deterministic fault injection (corrupted records, \
           dropped/duplicated events, ECC errors, stuck kernels), seeded from \
           $(b,--fault-seed) / \\$ACCEL_PROF_FAULT_SEED.")

let fault_seed_arg =
  Arg.(
    value
    & opt (some int64) None
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Fault-injection seed (ACCEL_PROF_FAULT_SEED); same seed, same faults.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Also write a chrome://tracing / Perfetto trace of the run to \
              $(docv).")

let telemetry_arg =
  Arg.(
    value
    & opt (some (enum [ ("off", "off"); ("basic", "basic"); ("full", "full") ])) None
    & info [ "telemetry" ] ~docv:"LEVEL"
        ~doc:
          "Framework self-telemetry level (ACCEL_PROF_TELEMETRY): $(b,off), \
           $(b,basic) (allocation-free self-time attribution, the default) or \
           $(b,full) (per-span recording for export).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the framework's own telemetry spans as a Chrome/Perfetto \
           trace to $(docv) (implies $(b,--telemetry full)). Combined with \
           $(b,--trace), the workload timeline and the telemetry spans land \
           in one file.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write pipeline and telemetry metrics in Prometheus text \
           exposition format to $(docv).")

let overhead_arg =
  Arg.(
    value & flag
    & info [ "overhead-report" ]
        ~doc:
          "Print the self-time attribution table: wall time of the run split \
           across simulate/handler/processor layers and each tool, summing \
           to the measurement window.")

let tolerant_arg =
  Arg.(
    value & flag
    & info [ "tolerant" ]
        ~doc:
          "Skip corrupt trace chunks instead of failing on the first CRC or \
           framing violation (ACCEL_PROF_TRACE_STRICT=0).")

let model_pos p =
  Arg.(
    value
    & pos p (some string) None
    & info [] ~docv:"MODEL" ~doc:"Workload: AN, RN-18, RN-34, BERT, GPT-2 or Whisper.")

(* Fleet path (--devices N > 1): the orchestrator drives its own seeded
   per-device shards, so the MODEL/tool machinery is bypassed; [capture]
   becomes the per-device trace prefix and [replay_traces] rebuilds the
   result from a previous capture instead of running live. *)
let fleet_cfg ~devices ~fanout ~inject_faults ~sample_rate ~overhead_budget
    ~capture =
  let cfg = Pasta.Fleet.default_cfg ~devices () in
  {
    cfg with
    Pasta.Fleet.fanout = Option.value fanout ~default:cfg.Pasta.Fleet.fanout;
    fault_rates =
      (if inject_faults then Some Gpusim.Faults.default_fleet_rates
       else cfg.Pasta.Fleet.fault_rates);
    sample_rate =
      (match sample_rate with
      | Some _ -> sample_rate
      | None -> cfg.Pasta.Fleet.sample_rate);
    overhead_budget =
      (match overhead_budget with
      | Some _ -> overhead_budget
      | None -> cfg.Pasta.Fleet.overhead_budget);
    capture_prefix = capture;
  }

let run_fleet ?(replay_traces = false) ~devices ~fanout ~strict ~inject_faults
    ~sample_rate ~overhead_budget ~capture ~metrics_out ~trace_out () =
  let cfg =
    fleet_cfg ~devices ~fanout ~inject_faults ~sample_rate ~overhead_budget
      ~capture
  in
  match if replay_traces then Pasta.Fleet.replay cfg else Pasta.Fleet.run cfg with
  | exception Invalid_argument msg -> `Error (false, msg)
  | r ->
      print_string r.Pasta.Fleet.report;
      (if (not replay_traces) && capture <> None then
         Option.iter
           (fun prefix ->
             Format.printf "[accelprof] fleet traces written to %s@."
               (Pasta.Fleet.trace_path prefix 0 |> fun first ->
                Printf.sprintf "%s .. %s" first
                  (Pasta.Fleet.trace_path prefix (devices - 1))))
           capture);
      (match trace_out with
      | None -> ()
      | Some path ->
          Pasta.Telemetry.write_chrome_trace path;
          Format.printf "[accelprof] telemetry trace written to %s (%d spans)@."
            path
            (Pasta.Telemetry.spans_recorded ()));
      (match metrics_out with
      | None -> ()
      | Some path ->
          Pasta.Telemetry.write_prometheus ~extra:[ r.Pasta.Fleet.registry ]
            path;
          Format.printf "[accelprof] metrics written to %s@." path);
      let absent =
        List.fold_left
          (fun acc (_, devs) -> acc + List.length devs)
          r.Pasta.Fleet.missing r.Pasta.Fleet.dropped_at_merge
      in
      if strict && absent > 0 then
        `Error
          ( false,
            Printf.sprintf
              "fleet: %d device(s) missing from the aggregate (--strict-fleet)"
              absent )
      else begin
        if
          r.Pasta.Fleet.missing > 0
          || r.Pasta.Fleet.quarantined_total > 0
          || r.Pasta.Fleet.records_dropped > 0
          || r.Pasta.Fleet.dropped_at_merge <> []
        then degraded := true;
        `Ok ()
      end

(* Shared workload driver for `accelprof MODEL` and `accelprof record`.
   [capture] streams the main session's op stream to a .ptrace file;
   [default_tool] lets `record` fall back to the passthrough capture tool
   when no analysis is selected. *)
let run_workload ?capture ?default_tool tool_name gpu mode iters sample_cap
    sample_rate overhead_budget domains devices fleet_fanout strict_fleet
    start_grid end_grid verbose health inject_faults fault_seed trace telemetry
    trace_out metrics_out overhead model =
  (* Registry key for the trace header, so replay can re-resolve the same
     tool (display names are not unique across tool variants). *)
  let capture_meta =
    match tool_name with Some n -> Some n | None -> Pasta.Config.tool_name ()
  in
  Pasta_tools.Tools.register_all ();
  if inject_faults then Pasta.Config.set "ACCEL_PROF_INJECT_FAULTS" "1";
  Option.iter
    (fun n -> Pasta.Config.set "ACCEL_PROF_DOMAINS" (string_of_int n))
    domains;
  Option.iter
    (fun s -> Pasta.Config.set "ACCEL_PROF_FAULT_SEED" (Int64.to_string s))
    fault_seed;
  (* Telemetry level: the explicit flag wins; exporters escalate to the
     level they need (span export needs full, metrics/overhead need at
     least basic). *)
  Option.iter (fun l -> Pasta.Config.set "ACCEL_PROF_TELEMETRY" l) telemetry;
  (match (trace_out, Pasta.Config.telemetry ()) with
  | Some _, (`Off | `Basic) -> Pasta.Config.set "ACCEL_PROF_TELEMETRY" "full"
  | _ -> ());
  (match (metrics_out, overhead, Pasta.Config.telemetry ()) with
  | Some _, _, `Off | _, true, `Off ->
      Pasta.Config.set "ACCEL_PROF_TELEMETRY" "basic"
  | _ -> ());
  Pasta.Telemetry.refresh_level ();
  Pasta.Telemetry.reset ();
  if strict_fleet then Pasta.Config.set "ACCEL_PROF_STRICT_FLEET" "1";
  if devices < 1 then `Error (true, "--devices must be >= 1")
  else if devices > 1 then
    run_fleet ~devices ~fanout:fleet_fanout
      ~strict:(Pasta.Config.strict_fleet ())
      ~inject_faults ~sample_rate ~overhead_budget ~capture ~metrics_out
      ~trace_out ()
  else
  match model with
  | None -> `Error (true, "a MODEL argument is required (try list-tools or --help)")
  | Some abbr when not (List.mem abbr Dlfw.Runner.all_abbrs) ->
      `Error
        ( false,
          Printf.sprintf "unknown model %S; available: %s" abbr
            (String.concat ", " Dlfw.Runner.all_abbrs) )
  | Some abbr -> (
      let tool =
        match tool_name with
        | Some name -> Option.map (fun mk -> mk ()) (Pasta.Registry.find name)
        | None -> (
            match Pasta.Registry.resolve_from_config () with
            | Some t -> Some t
            | None -> default_tool)
      in
      match tool with
      | None ->
          `Error
            ( false,
              Printf.sprintf "no tool selected or unknown tool; available: %s"
                (String.concat ", " (Pasta.Registry.names ())) )
      | Some tool ->
          let device = Gpusim.Device.create gpu in
          let ctx = Dlfw.Ctx.create device in
          let range = Pasta.Range.create ?start_grid ?end_grid () in
          let iters =
            match iters with
            | Some n -> n
            | None -> Dlfw.Runner.default_iters ~abbr ~mode
          in
          (* The optional trace exporter runs as a second, independent
             session alongside the selected tool. *)
          let tracer =
            Option.map
              (fun path ->
                let tx = Pasta.Trace_export.create () in
                let s = Pasta.Session.attach ~tool:(Pasta.Trace_export.tool tx) device in
                (path, tx, s))
              trace
          in
          let (), result =
            Pasta.Session.run ~range ?sample_cap ?sample_rate ?overhead_budget
              ?capture ?capture_meta ~tool device (fun () ->
                let model = Dlfw.Runner.build ctx abbr in
                Dlfw.Runner.run ctx model ~mode ~iters)
          in
          Option.iter
            (fun (path, tx, s) ->
              let (_ : Pasta.Session.result) = Pasta.Session.detach s in
              Pasta.Trace_export.write_file tx path;
              Format.printf "[accelprof] trace written to %s (%d events)@." path
                (Pasta.Trace_export.event_count tx))
            tracer;
          Option.iter
            (fun path ->
              Format.printf
                "[accelprof] ptrace written to %s (%d ops, %d bytes, %d chunks)@."
                path result.Pasta.Session.health.Pasta.Session.events_recorded
                result.Pasta.Session.health.Pasta.Session.bytes_written
                result.Pasta.Session.health.Pasta.Session.chunks)
            capture;
          if verbose then
            Format.printf
              "[accelprof] tool=%s gpu=%s %s-%s x%d: %d kernels, %d events seen, %d \
               dispatched, %.2f ms simulated (%a)@.@."
              result.Pasta.Session.tool_name gpu.Gpusim.Arch.name abbr
              (Dlfw.Runner.mode_to_string mode)
              iters result.Pasta.Session.kernels result.Pasta.Session.events_seen
              result.Pasta.Session.events_dispatched
              (result.Pasta.Session.elapsed_us /. 1000.0)
              Vendor.Phases.pp result.Pasta.Session.phases;
          (* Attribution is snapshotted before the exporters run, so the
             report reflects the profiled run, not the export I/O. *)
          if overhead then begin
            Format.printf "[accelprof] %a@." Pasta.Telemetry.pp_attribution
              (Pasta.Telemetry.attribution ());
            match result.Pasta.Session.health.Pasta.Session.sampling with
            | Some sn ->
                Format.printf "[accelprof] %a@." Pasta.Sampler.pp_snapshot sn
            | None -> ()
          end;
          (match trace_out with
          | None -> ()
          | Some path ->
              (* With --trace also active, splice the telemetry spans into
                 the workload timeline; alone, write them standalone. *)
              (match tracer with
              | Some (_, tx, _) ->
                  Pasta.Trace_export.write_file
                    ~extra:(Pasta.Telemetry.chrome_events ())
                    tx path
              | None -> Pasta.Telemetry.write_chrome_trace path);
              Format.printf
                "[accelprof] telemetry trace written to %s (%d spans)@." path
                (Pasta.Telemetry.spans_recorded ()));
          (match metrics_out with
          | None -> ()
          | Some path ->
              Pasta.Telemetry.write_prometheus
                ~extra:[ result.Pasta.Session.metrics ]
                path;
              Format.printf "[accelprof] metrics written to %s@." path);
          if health || inject_faults then
            Format.printf "[accelprof] %a@." Pasta.Session.pp_health
              result.Pasta.Session.health;
          result.Pasta.Session.report Format.std_formatter;
          Dlfw.Ctx.destroy ctx;
          (* Data loss without hard failure: report it in the exit code. *)
          let h = result.Pasta.Session.health in
          if h.Pasta.Session.quarantines > 0 || h.Pasta.Session.records_dropped > 0
          then degraded := true;
          `Ok ())

let run_profile tool_name gpu mode iters sample_cap sample_rate overhead_budget
    domains devices fleet_fanout strict_fleet start_grid end_grid verbose health
    inject_faults fault_seed trace telemetry trace_out metrics_out overhead
    model =
  run_workload tool_name gpu mode iters sample_cap sample_rate overhead_budget
    domains devices fleet_fanout strict_fleet start_grid end_grid verbose health
    inject_faults fault_seed trace telemetry trace_out metrics_out overhead
    model

let profile_term =
  Term.(
    ret
      (const run_profile $ tool_arg $ gpu_arg $ mode_arg $ iters_arg
     $ sample_cap_arg $ sample_rate_arg $ budget_arg $ domains_arg
     $ devices_arg $ fleet_fanout_arg $ strict_fleet_arg
     $ start_grid_arg $ end_grid_arg $ verbose_arg $ health_arg
     $ inject_faults_arg $ fault_seed_arg $ trace_arg $ telemetry_arg
     $ trace_out_arg $ metrics_out_arg $ overhead_arg $ model_pos 0))

(* --- record ------------------------------------------------------- *)

let out_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"OUT.ptrace" ~doc:"Trace file to write.")

let run_record out tool_name gpu mode iters sample_cap sample_rate
    overhead_budget domains devices fleet_fanout strict_fleet start_grid
    end_grid verbose health inject_faults fault_seed telemetry trace_out
    metrics_out overhead model =
  run_workload ~capture:out
    ~default_tool:(Pasta.Capture.passthrough ())
    tool_name gpu mode iters sample_cap sample_rate overhead_budget domains
    devices fleet_fanout strict_fleet start_grid end_grid verbose health
    inject_faults fault_seed None telemetry trace_out metrics_out overhead model

let record_cmd =
  let term =
    Term.(
      ret
        (const run_record $ out_pos $ tool_arg $ gpu_arg $ mode_arg $ iters_arg
       $ sample_cap_arg $ sample_rate_arg $ budget_arg $ domains_arg
       $ devices_arg $ fleet_fanout_arg $ strict_fleet_arg
       $ start_grid_arg $ end_grid_arg $ verbose_arg $ health_arg
       $ inject_faults_arg $ fault_seed_arg $ telemetry_arg $ trace_out_arg
       $ metrics_out_arg $ overhead_arg $ model_pos 1))
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "run a workload and capture its submission-level op stream to a \
          .ptrace file; without $(b,--tool), a passthrough capture tool \
          records fine-grained batches with no analysis. With \
          $(b,--devices) N > 1, OUT.ptrace is the per-device trace prefix \
          (OUT.devNNN.ptrace) for the fleet shards")
    term

(* --- replay ------------------------------------------------------- *)

let in_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"IN.ptrace" ~doc:"Trace file to replay.")

let tools_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tools" ] ~docv:"T1,T2"
        ~doc:
          "Comma-separated tools to re-drive over the trace; defaults to the \
           tool recorded in the trace header, then \\$PASTA_TOOL.")

let replay_mode tolerant =
  if tolerant then Pasta.Ptrace.Tolerant
  else if Pasta.Config.trace_strict () then Pasta.Ptrace.Strict
  else Pasta.Ptrace.Tolerant

let run_replay path tools tolerant devices fleet_fanout strict_fleet
    inject_faults fault_seed start_grid end_grid verbose health =
  Pasta_tools.Tools.register_all ();
  if inject_faults then Pasta.Config.set "ACCEL_PROF_INJECT_FAULTS" "1";
  Option.iter
    (fun s -> Pasta.Config.set "ACCEL_PROF_FAULT_SEED" (Int64.to_string s))
    fault_seed;
  if strict_fleet then Pasta.Config.set "ACCEL_PROF_STRICT_FLEET" "1";
  if devices > 1 then begin
    (* IN.ptrace is the prefix a fleet `record --devices N` wrote; the
       cascade (same seed, same fault schedule) is rebuilt offline from
       the per-device traces. *)
    Pasta.Telemetry.refresh_level ();
    Pasta.Telemetry.reset ();
    run_fleet ~replay_traces:true ~devices ~fanout:fleet_fanout
      ~strict:(Pasta.Config.strict_fleet ())
      ~inject_faults ~sample_rate:None ~overhead_budget:None
      ~capture:(Some path) ~metrics_out:None ~trace_out:None ()
  end
  else
  let mode = replay_mode tolerant in
  let tool_names =
    match tools with
    | Some s ->
        String.split_on_char ',' s |> List.map String.trim
        |> List.filter (fun s -> s <> "")
    | None -> (
        match
          (try Some (Pasta.Ptrace.read_header_of_file path)
           with Pasta.Ptrace.Corrupt _ | Sys_error _ -> None)
        with
        | Some h
          when h.Pasta.Ptrace.h_meta <> ""
               && Pasta.Registry.find h.Pasta.Ptrace.h_meta <> None ->
            [ h.Pasta.Ptrace.h_meta ]
        | _ -> ( match Pasta.Config.tool_name () with Some t -> [ t ] | None -> []))
  in
  if tool_names = [] then
    `Error
      ( false,
        Printf.sprintf
          "no tool: pass --tools (available: %s) or record with an analysis tool"
          (String.concat ", " (Pasta.Registry.names ())) )
  else
    let unknown =
      List.filter (fun n -> Pasta.Registry.find n = None) tool_names
    in
    if unknown <> [] then
      `Error
        ( false,
          Printf.sprintf "unknown tool(s) %s; available: %s"
            (String.concat ", " unknown)
            (String.concat ", " (Pasta.Registry.names ())) )
    else
      match
        List.iter
          (fun name ->
            let tool =
              match Pasta.Registry.find name with
              | Some mk -> mk ()
              | None -> assert false
            in
            let range = Pasta.Range.create ?start_grid ?end_grid () in
            let o = Pasta.Replay.run ~mode ~range ~tool path in
            if verbose || health then
              Format.printf
                "[accelprof] replay tool=%s %s: %d ops, %d chunks (%d skipped), \
                 %.2f ms simulated@."
                o.Pasta.Replay.tool_name path o.Pasta.Replay.ops_replayed
                o.Pasta.Replay.chunks o.Pasta.Replay.chunks_skipped
                (o.Pasta.Replay.elapsed_us /. 1000.0);
            o.Pasta.Replay.report Format.std_formatter)
          tool_names
      with
      | () -> `Ok ()
      | exception Pasta.Ptrace.Corrupt msg ->
          `Error (false, Printf.sprintf "corrupt trace: %s (try --tolerant)" msg)
      | exception Sys_error msg -> `Error (false, msg)

let replay_cmd =
  let term =
    Term.(
      ret
        (const run_replay $ in_pos $ tools_arg $ tolerant_arg $ devices_arg
       $ fleet_fanout_arg $ strict_fleet_arg $ inject_faults_arg
       $ fault_seed_arg $ start_grid_arg $ end_grid_arg $ verbose_arg
       $ health_arg))
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "re-drive a recorded .ptrace through the full tool pipeline offline; \
          replaying the recording run's tool reproduces its report byte for \
          byte")
    term

(* --- trace stat / diff -------------------------------------------- *)

let trace_pos p doc =
  Arg.(required & pos p (some string) None & info [] ~docv:"FILE" ~doc)

let run_stat path tolerant =
  match Pasta.Replay.stat ~mode:(replay_mode tolerant) path with
  | s ->
      Format.printf "%a" Pasta.Replay.pp_stat s;
      `Ok ()
  | exception Pasta.Ptrace.Corrupt msg ->
      `Error (false, Printf.sprintf "corrupt trace: %s (try --tolerant)" msg)
  | exception Sys_error msg -> `Error (false, msg)

let run_diff a b tolerant =
  let mode = replay_mode tolerant in
  match Pasta.Replay.diff ~mode a b with
  | Pasta.Replay.Identical _ as d ->
      Format.printf "%a" Pasta.Replay.pp_divergence d;
      `Ok ()
  | d ->
      Format.printf "%a" Pasta.Replay.pp_divergence d;
      (* differing traces exit nonzero, like diff(1) *)
      exit 1
  | exception Pasta.Ptrace.Corrupt msg ->
      `Error (false, Printf.sprintf "corrupt trace: %s (try --tolerant)" msg)
  | exception Sys_error msg -> `Error (false, msg)

let stat_cmd =
  Cmd.v
    (Cmd.info "stat" ~doc:"summarize a .ptrace: header, sizes, op-kind histogram")
    Term.(ret (const run_stat $ trace_pos 0 "Trace file to inspect." $ tolerant_arg))

let diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "structurally compare two .ptrace op streams (chunking and interning \
          layout are ignored); exits 1 when they diverge")
    Term.(
      ret
        (const run_diff $ trace_pos 0 "First trace." $ trace_pos 1 "Second trace."
       $ tolerant_arg))

let trace_cmd =
  Cmd.group
    (Cmd.info "trace" ~doc:"inspect and compare recorded .ptrace files")
    [ stat_cmd; diff_cmd ]

let main_cmd =
  Cmd.group ~default:profile_term
    (Cmd.info "accelprof" ~version:"1.0.0"
       ~doc:"run a PASTA analysis tool against a simulated DL workload")
    [ record_cmd; replay_cmd; trace_cmd ]

let () =
  (* "list-tools" is a convenience alias; everything else goes through the
     cmdliner term. *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "list-tools" then begin
    Pasta_tools.Tools.register_all ();
    List.iter print_endline (Pasta.Registry.names ())
  end
  else
    let code = Cmd.eval main_cmd in
    (* A run that succeeded but lost data (quarantined tools, dropped
       records, missing fleet devices) exits "degraded" rather than 0. *)
    exit (if code = 0 && !degraded then exit_degraded else code)
