(* accelprof: the PASTA profiling client (the paper's artifact runs
   `accelprof -v -t <tool> <executable> [args...]`; here the "executable"
   is one of the simulated Table IV workloads).

   Examples:
     accelprof -t kernel_freq BERT
     accelprof -t memory_charact --mode train --gpu rtx3060 GPT-2
     accelprof -t hotness --start-grid 100 --end-grid 200 BERT
     accelprof list-tools *)

open Cmdliner

let arch_of_string = function
  | "a100" -> Ok Gpusim.Arch.a100
  | "rtx3060" -> Ok Gpusim.Arch.rtx3060
  | "mi300x" -> Ok Gpusim.Arch.mi300x
  | s -> Error (`Msg (Printf.sprintf "unknown GPU %S (a100 | rtx3060 | mi300x)" s))

let arch_conv =
  Arg.conv
    ( (fun s -> arch_of_string (String.lowercase_ascii s)),
      fun ppf a -> Format.pp_print_string ppf a.Gpusim.Arch.name )

let mode_conv =
  Arg.conv
    ( (fun s ->
        match String.lowercase_ascii s with
        | "inference" | "infer" -> Ok Dlfw.Runner.Inference
        | "train" | "training" -> Ok Dlfw.Runner.Train
        | s -> Error (`Msg (Printf.sprintf "unknown mode %S (inference | train)" s))),
      fun ppf m -> Format.pp_print_string ppf (Dlfw.Runner.mode_to_string m) )

let tool_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "t"; "tool" ] ~docv:"TOOL"
        ~doc:"PASTA tool to run (see $(b,list-tools)); defaults to \\$PASTA_TOOL.")

let gpu_arg =
  Arg.(
    value
    & opt arch_conv Gpusim.Arch.a100
    & info [ "gpu" ] ~docv:"GPU" ~doc:"Simulated GPU: a100, rtx3060 or mi300x.")

let mode_arg =
  Arg.(
    value
    & opt mode_conv Dlfw.Runner.Inference
    & info [ "mode" ] ~docv:"MODE" ~doc:"Workload mode: inference or train.")

let iters_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "iters" ] ~docv:"N" ~doc:"Iterations (default: the per-model evaluation count).")

let sample_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sample-rate" ] ~docv:"N"
        ~doc:"Max materialized trace records per kernel region \
              (ACCEL_PROF_ENV_SAMPLE_RATE).")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Domain-pool size for parallel device-side preprocessing \
           (ACCEL_PROF_DOMAINS). 1 runs fully serial; the default is the \
           machine's recommended domain count, capped at 8. Results are \
           identical for every value.")

let start_grid_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "start-grid" ] ~docv:"ID" ~doc:"First kernel launch to analyze (START_GRID_ID).")

let end_grid_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "end-grid" ] ~docv:"ID" ~doc:"Last kernel launch to analyze (END_GRID_ID).")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print session statistics.")

let health_arg =
  Arg.(
    value & flag
    & info [ "health" ]
        ~doc:
          "Print the pipeline health report: tool failures and quarantines, \
           bounded-buffer drop counts, watchdog trips and injected-fault totals.")

let inject_faults_arg =
  Arg.(
    value & flag
    & info [ "inject-faults" ]
        ~doc:
          "Enable deterministic fault injection (corrupted records, \
           dropped/duplicated events, ECC errors, stuck kernels), seeded from \
           $(b,--fault-seed) / \\$ACCEL_PROF_FAULT_SEED.")

let fault_seed_arg =
  Arg.(
    value
    & opt (some int64) None
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Fault-injection seed (ACCEL_PROF_FAULT_SEED); same seed, same faults.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Also write a chrome://tracing / Perfetto trace of the run to \
              $(docv).")

let model_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"MODEL" ~doc:"Workload: AN, RN-18, RN-34, BERT, GPT-2 or Whisper.")

let run_profile tool_name gpu mode iters sample_rate domains start_grid end_grid verbose
    health inject_faults fault_seed trace model =
  Pasta_tools.Tools.register_all ();
  if inject_faults then Pasta.Config.set "ACCEL_PROF_INJECT_FAULTS" "1";
  Option.iter
    (fun n -> Pasta.Config.set "ACCEL_PROF_DOMAINS" (string_of_int n))
    domains;
  Option.iter
    (fun s -> Pasta.Config.set "ACCEL_PROF_FAULT_SEED" (Int64.to_string s))
    fault_seed;
  match model with
  | None -> `Error (true, "a MODEL argument is required (try list-tools or --help)")
  | Some abbr when not (List.mem abbr Dlfw.Runner.all_abbrs) ->
      `Error
        ( false,
          Printf.sprintf "unknown model %S; available: %s" abbr
            (String.concat ", " Dlfw.Runner.all_abbrs) )
  | Some abbr -> (
      let tool =
        match tool_name with
        | Some name -> Option.map (fun mk -> mk ()) (Pasta.Registry.find name)
        | None -> Pasta.Registry.resolve_from_config ()
      in
      match tool with
      | None ->
          `Error
            ( false,
              Printf.sprintf "no tool selected or unknown tool; available: %s"
                (String.concat ", " (Pasta.Registry.names ())) )
      | Some tool ->
          let device = Gpusim.Device.create gpu in
          let ctx = Dlfw.Ctx.create device in
          let range = Pasta.Range.create ?start_grid ?end_grid () in
          let iters =
            match iters with
            | Some n -> n
            | None -> Dlfw.Runner.default_iters ~abbr ~mode
          in
          (* The optional trace exporter runs as a second, independent
             session alongside the selected tool. *)
          let tracer =
            Option.map
              (fun path ->
                let tx = Pasta.Trace_export.create () in
                let s = Pasta.Session.attach ~tool:(Pasta.Trace_export.tool tx) device in
                (path, tx, s))
              trace
          in
          let (), result =
            Pasta.Session.run ~range ?sample_rate ~tool device (fun () ->
                let model = Dlfw.Runner.build ctx abbr in
                Dlfw.Runner.run ctx model ~mode ~iters)
          in
          Option.iter
            (fun (path, tx, s) ->
              let (_ : Pasta.Session.result) = Pasta.Session.detach s in
              Pasta.Trace_export.write_file tx path;
              Format.printf "[accelprof] trace written to %s (%d events)@." path
                (Pasta.Trace_export.event_count tx))
            tracer;
          if verbose then
            Format.printf
              "[accelprof] tool=%s gpu=%s %s-%s x%d: %d kernels, %d events seen, %d \
               dispatched, %.2f ms simulated (%a)@.@."
              result.Pasta.Session.tool_name gpu.Gpusim.Arch.name abbr
              (Dlfw.Runner.mode_to_string mode)
              iters result.Pasta.Session.kernels result.Pasta.Session.events_seen
              result.Pasta.Session.events_dispatched
              (result.Pasta.Session.elapsed_us /. 1000.0)
              Vendor.Phases.pp result.Pasta.Session.phases;
          if health || inject_faults then
            Format.printf "[accelprof] %a@." Pasta.Session.pp_health
              result.Pasta.Session.health;
          result.Pasta.Session.report Format.std_formatter;
          Dlfw.Ctx.destroy ctx;
          `Ok ())

let profile_cmd =
  let term =
    Term.(
      ret
        (const run_profile $ tool_arg $ gpu_arg $ mode_arg $ iters_arg $ sample_arg
       $ domains_arg $ start_grid_arg $ end_grid_arg $ verbose_arg $ health_arg
       $ inject_faults_arg $ fault_seed_arg $ trace_arg $ model_arg))
  in
  let info =
    Cmd.info "accelprof" ~version:"1.0.0"
      ~doc:"run a PASTA analysis tool against a simulated DL workload"
  in
  Cmd.v info term

let () =
  (* "list-tools" is a convenience alias; everything else goes through the
     cmdliner term. *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "list-tools" then begin
    Pasta_tools.Tools.register_all ();
    List.iter print_endline (Pasta.Registry.names ())
  end
  else exit (Cmd.eval profile_cmd)
